"""Tests for the gate-level asynchronous circuit simulator."""

import pytest

from repro.errors import CircuitError
from repro.tl.circuit import Circuit
from repro.tl.encoding import OpticalWaveform
from repro.tl.gates import GateType


def pulse(start, end):
    return OpticalWaveform.from_intervals([(start, end)])


class TestBasicGates:
    def test_inverter(self):
        circ = Circuit()
        a = circ.signal("a")
        out = circ.add_inv(a, "out")
        out.record()
        circ.drive(a, pulse(10, 20))
        circ.run()
        # Output starts high (input dark), goes low after rise + delay.
        rises = [t for t, lvl in out.history() if lvl == 0]
        assert rises and rises[0] == pytest.approx(10 + circ.chars.delay_ps)

    def test_and_gate(self):
        circ = Circuit()
        a, b = circ.signal("a"), circ.signal("b")
        out = circ.add_and(a, b, "out")
        out.record()
        circ.drive(a, pulse(0, 100))
        circ.drive(b, pulse(50, 150))
        circ.run()
        highs = out.rise_times()
        lows = out.fall_times()
        assert highs[0] == pytest.approx(50 + circ.chars.delay_ps)
        assert lows[0] == pytest.approx(100 + circ.chars.delay_ps)

    def test_or_gate(self):
        circ = Circuit()
        a, b = circ.signal("a"), circ.signal("b")
        out = circ.add_or(a, b, "out")
        out.record()
        circ.drive(a, pulse(0, 10))
        circ.drive(b, pulse(5, 20))
        circ.run()
        assert out.rise_times()[0] == pytest.approx(circ.chars.delay_ps)
        assert out.fall_times()[0] == pytest.approx(20 + circ.chars.delay_ps)

    def test_nand_nor(self):
        circ = Circuit()
        a, b = circ.signal("a", 1), circ.signal("b", 1)
        nand = circ.add_nand(a, b, "nand")
        nor = circ.add_nor(a, b, "nor")
        assert nand.level == 0
        assert nor.level == 0

    def test_buf(self):
        circ = Circuit()
        a = circ.signal("a")
        out = circ.add_buf(a, "out")
        out.record()
        circ.drive(a, pulse(5, 6))
        circ.run()
        assert out.rise_times()[0] == pytest.approx(5 + circ.chars.delay_ps)

    def test_fanin_rule_enforced(self):
        # Active TL gates are limited to 2 inputs (Sec. III).
        circ = Circuit()
        sigs = [circ.signal(f"s{i}") for i in range(3)]
        with pytest.raises(CircuitError):
            circ._check_fanin(sigs, "AND")


class TestPassives:
    def test_waveguide_delay(self):
        circ = Circuit()
        a = circ.signal("a")
        out = circ.add_waveguide_delay(a, 132.0, "wd")
        out.record()
        circ.drive(a, pulse(0, 10))
        circ.run()
        assert out.rise_times()[0] == pytest.approx(132.0)
        assert out.fall_times()[0] == pytest.approx(142.0)

    def test_waveguide_delay_validation(self):
        circ = Circuit()
        with pytest.raises(CircuitError):
            circ.add_waveguide_delay(circ.signal("a"), -1.0, "wd")

    def test_combiner_is_or(self):
        circ = Circuit()
        sigs = [circ.signal(f"s{i}") for i in range(4)]
        out = circ.add_combiner(sigs, "comb")
        out.record()
        for i, sig in enumerate(sigs):
            circ.drive(sig, pulse(10 * i, 10 * i + 5))
        circ.run()
        # Light present whenever any input is lit.
        assert len(out.rise_times()) == 4

    def test_combiner_allows_wide_fanin(self):
        # Combiners are passive: the 2-input rule does not apply.
        circ = Circuit()
        sigs = [circ.signal(f"s{i}") for i in range(16)]
        circ.add_combiner(sigs, "wide")  # must not raise

    def test_combiner_needs_inputs(self):
        circ = Circuit()
        with pytest.raises(CircuitError):
            circ.add_combiner([], "empty")

    def test_splitter(self):
        circ = Circuit()
        a = circ.signal("a")
        copies = circ.add_splitter(a, 3)
        assert len(copies) == 3
        assert all(c is a for c in copies)
        with pytest.raises(CircuitError):
            circ.add_splitter(a, 1)


class TestLatchAndMutex:
    def test_sr_latch_set_reset(self):
        circ = Circuit()
        s, r = circ.signal("s"), circ.signal("r")
        q, qbar = circ.add_sr_latch(s, r, "latch")
        q.record()
        circ.drive(s, pulse(10, 20))
        circ.drive(r, pulse(100, 110))
        circ.run()
        assert q.rise_times() and q.rise_times()[0] < 20
        assert q.fall_times() and q.fall_times()[0] > 100
        assert q.level == 0 and qbar.level == 1

    def test_sr_latch_initial_state(self):
        circ = Circuit()
        q, qbar = circ.add_sr_latch(circ.signal("s"), circ.signal("r"), "l")
        assert q.level == 0 and qbar.level == 1

    def test_latch_counts_two_gates(self):
        circ = Circuit()
        circ.add_sr_latch(circ.signal("s"), circ.signal("r"), "l")
        assert circ.budget.tl_gate_count == 2

    def test_mutex_grants_one(self):
        circ = Circuit()
        r0, r1 = circ.signal("r0"), circ.signal("r1")
        g0, g1 = circ.add_mutex(r0, r1, "arb")
        circ.drive(r0, pulse(10, 100))
        circ.drive(r1, pulse(20, 200))
        circ.run(until=150)
        # r0 wins; r1 must wait for r0's release.
        assert g0.level == 0  # released at t=100
        assert g1.level == 1  # acquired after r0 dropped

    def test_mutex_never_double_grants(self):
        circ = Circuit()
        r0, r1 = circ.signal("r0"), circ.signal("r1")
        g0, g1 = circ.add_mutex(r0, r1, "arb")
        g0.record()
        g1.record()
        circ.drive(r0, pulse(10, 100))
        circ.drive(r1, pulse(10, 100))
        circ.run()
        # Reconstruct overlap: collect intervals where both high.
        events = sorted(
            [(t, "g0", lvl) for t, lvl in g0.history()]
            + [(t, "g1", lvl) for t, lvl in g1.history()]
        )
        levels = {"g0": 0, "g1": 0}
        for _, name, lvl in events:
            levels[name] = lvl
            assert not (levels["g0"] and levels["g1"])

    def test_mutex_second_granted_after_release(self):
        circ = Circuit()
        r0, r1 = circ.signal("r0"), circ.signal("r1")
        g0, g1 = circ.add_mutex(r0, r1, "arb")
        g1.record()
        circ.drive(r0, pulse(0, 50))
        circ.drive(r1, pulse(10, 300))
        circ.run()
        assert g1.rise_times() and g1.rise_times()[0] >= 50


class TestBudgetAccounting:
    def test_active_gates_counted(self):
        circ = Circuit()
        a, b = circ.signal("a"), circ.signal("b")
        circ.add_and(a, b, "x")
        circ.add_inv(a, "y")
        assert circ.budget.tl_gate_count == 2

    def test_passives_not_counted_as_gates(self):
        circ = Circuit()
        a = circ.signal("a")
        circ.add_waveguide_delay(a, 1.0, "wd")
        circ.add_combiner([a], "c")
        circ.add_splitter(a, 2)
        assert circ.budget.tl_gate_count == 0
        assert circ.budget.passive_count == 3

    def test_power_scales_with_gate_count(self):
        circ = Circuit()
        a, b = circ.signal("a"), circ.signal("b")
        circ.add_and(a, b, "x")
        assert circ.budget.power_w == pytest.approx(
            circ.chars.power_w, rel=1e-9
        )

    def test_budget_merge_and_validation(self):
        from repro.tl.gates import GateBudget
        b1, b2 = GateBudget(), GateBudget()
        b1.add(GateType.AND, 3)
        b2.add(GateType.AND, 2)
        b2.add(GateType.LATCH, 1)
        b1.merge(b2)
        assert b1.tl_gate_count == 3 + 2 + 2
        with pytest.raises(ValueError):
            b1.add(GateType.AND, -1)

    def test_render_waveforms_shape(self):
        circ = Circuit()
        a = circ.signal("a")
        a.record()
        circ.drive(a, pulse(0, 50))
        circ.run()
        text = circ.render_waveforms([a], t_end=100, width=10)
        assert "#" in text and "_" in text
