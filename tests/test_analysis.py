"""Tests for the experiment drivers and table formatting."""

import pytest

from repro.analysis import (
    NETWORK_NAMES,
    build_network,
    figure6,
    figure7,
    format_latency_grid,
    format_table,
    normalize_to,
    pattern_destinations,
    run_open_loop,
    table5,
)
from repro.core import BaldurNetwork
from repro.electrical import (
    DragonflyNetwork,
    FatTreeNetwork,
    IdealNetwork,
    MultiButterflyNetwork,
)
from repro.errors import ConfigurationError


class TestBuildNetwork:
    def test_all_names_construct(self):
        classes = {
            "baldur": BaldurNetwork,
            "multibutterfly": MultiButterflyNetwork,
            "dragonfly": DragonflyNetwork,
            "fattree": FatTreeNetwork,
            "ideal": IdealNetwork,
        }
        for name in NETWORK_NAMES:
            assert isinstance(build_network(name, 32), classes[name])

    def test_unknown_network_rejected(self):
        with pytest.raises(ConfigurationError):
            build_network("torus", 32)

    def test_pattern_destinations(self):
        for pattern in (
            "random_permutation", "transpose", "bisection",
            "group_permutation", "hotspot",
        ):
            dests = pattern_destinations(pattern, 64, seed=1)
            assert dests
            assert all(0 <= d < 64 for d in dests.values())

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            pattern_destinations("tornado", 64)


class TestDrivers:
    def test_run_open_loop_returns_stats(self):
        stats = run_open_loop("ideal", 16, "random_permutation", 0.5, 5)
        assert stats.delivered == 80
        assert stats.average_latency == pytest.approx(200.0)

    def test_figure6_structure(self):
        results = figure6(
            n_nodes=16,
            loads=(0.5,),
            patterns=("random_permutation",),
            packets_per_node=3,
            networks=("baldur", "ideal"),
        )
        stats = results["random_permutation"]["baldur"][0.5]
        assert stats.delivered > 0
        assert results["random_permutation"]["ideal"][0.5].average_latency \
            == pytest.approx(200.0)

    def test_figure7_structure(self):
        results = figure7(
            n_nodes=16,
            packets_per_node=4,
            ping_pong_rounds=2,
            networks=("baldur", "ideal"),
        )
        assert set(results) == {
            "hotspot", "ping_pong1", "ping_pong2",
            "AMG", "CrystalRouter", "MultiGrid", "FB",
        }
        for workload, per_net in results.items():
            assert per_net["baldur"].delivered > 0, workload

    def test_table5_rows(self):
        rows = table5(
            n_nodes=16, multiplicities=(1, 2), packets_per_node=5
        )
        assert [r["multiplicity"] for r in rows] == [1, 2]
        assert rows[0]["gates_per_switch"] == 64
        assert rows[0]["drop_rate_pct"] >= rows[1]["drop_rate_pct"]


class TestTables:
    def test_format_table_basic(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", float("nan")]])
        assert "a" in text and "x" in text and "-" in text

    def test_format_table_title(self):
        assert format_table(["a"], [[1]], title="T").startswith("T")

    def test_small_floats_scientific(self):
        text = format_table(["p"], [[1.3e-9]])
        assert "e-09" in text

    def test_format_latency_grid(self):
        class FakeStats:
            average_latency = 123.0

        text = format_latency_grid(
            {"baldur": {0.5: FakeStats()}}, title="grid"
        )
        assert "baldur" in text and "123" in text

    def test_normalize_to(self):
        normed = normalize_to({"a": 10.0, "b": 20.0}, "a")
        assert normed == {"a": 1.0, "b": 2.0}

    def test_normalize_missing_reference(self):
        with pytest.raises(KeyError):
            normalize_to({"a": 1.0}, "z")

    def test_normalize_zero_reference(self):
        with pytest.raises(ValueError):
            normalize_to({"a": 0.0}, "a")
