"""Tests for Resource/Store (repro.sim.resources) and RNG streams."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Resource, Store, derive_seed, numpy_stream, stream


class TestResource:
    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_immediate_grant_under_capacity(self):
        env = Environment()
        res = Resource(env, capacity=2)
        r1, r2 = res.request(), res.request()
        assert r1.triggered and r2.triggered
        assert res.count == 2

    def test_waiter_blocks_until_release(self):
        env = Environment()
        res = Resource(env, capacity=1)
        res.request()
        r2 = res.request()
        assert not r2.triggered
        assert res.queue_length == 1
        res.release()
        assert r2.triggered
        assert res.queue_length == 0

    def test_release_without_request_raises(self):
        env = Environment()
        res = Resource(env)
        with pytest.raises(SimulationError):
            res.release()

    def test_fifo_wakeup_order(self):
        env = Environment()
        res = Resource(env, capacity=1)
        res.request()
        waiters = [res.request() for _ in range(3)]
        res.release()
        assert waiters[0].triggered
        assert not waiters[1].triggered

    def test_process_style_usage(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def user(name, hold):
            req = res.request()
            yield req
            log.append((name, "acquired", env.now))
            yield env.timeout(hold)
            res.release()

        env.process(user("a", 10))
        env.process(user("b", 5))
        env.run()
        assert log == [("a", "acquired", 0.0), ("b", "acquired", 10.0)]


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        store.put("x")
        g = store.get()
        assert g.triggered and g.value == "x"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        g = store.get()
        assert not g.triggered
        store.put("late")
        assert g.triggered and g.value == "late"

    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        for i in range(3):
            store.put(i)
        assert [store.get().value for _ in range(3)] == [0, 1, 2]

    def test_bounded_put_blocks(self):
        env = Environment()
        store = Store(env, capacity=1)
        p1 = store.put("a")
        p2 = store.put("b")
        assert p1.triggered and not p2.triggered
        g = store.get()
        assert g.value == "a"
        assert p2.triggered
        assert store.items == ("b",)

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Store(env, capacity=0)

    def test_try_get(self):
        env = Environment()
        store = Store(env)
        assert store.try_get() is None
        store.put(7)
        assert store.try_get() == 7
        assert len(store) == 0

    def test_try_get_unblocks_putter(self):
        env = Environment()
        store = Store(env, capacity=1)
        store.put("a")
        p2 = store.put("b")
        assert not p2.triggered
        assert store.try_get() == "a"
        assert p2.triggered

    def test_len(self):
        env = Environment()
        store = Store(env)
        assert len(store) == 0
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestRandomStreams:
    def test_derive_seed_deterministic(self):
        assert derive_seed(1, "traffic") == derive_seed(1, "traffic")

    def test_derive_seed_distinguishes_names(self):
        assert derive_seed(1, "traffic") != derive_seed(1, "wiring")

    def test_derive_seed_distinguishes_masters(self):
        assert derive_seed(1, "traffic") != derive_seed(2, "traffic")

    def test_stream_returns_random_instance(self):
        rng = stream(0, "x")
        assert isinstance(rng, random.Random)

    def test_stream_reproducible(self):
        a = [stream(5, "s").random() for _ in range(3)]
        b = [stream(5, "s").random() for _ in range(3)]
        assert a == b

    def test_numpy_stream_reproducible(self):
        a = numpy_stream(5, "s").standard_normal(4)
        b = numpy_stream(5, "s").standard_normal(4)
        assert (a == b).all()

    def test_adjacent_seeds_decorrelated(self):
        # SHA-based derivation should make adjacent master seeds unrelated.
        a = stream(100, "t").random()
        b = stream(101, "t").random()
        assert abs(a - b) > 1e-12
