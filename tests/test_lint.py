"""Tests for the repro.lint static analyzer.

Covers the engine (discovery, suppression, parse failures, registry),
each shipped rule against its fixture corpus under
``tests/lint_fixtures/``, the reporters, and both CLI entry points --
plus the acceptance gate: the real ``src``/``tests`` tree lints clean.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import (
    DEFAULT_EXCLUDED_DIRS,
    Finding,
    module_name_for,
    registry,
    run_lint,
)
from repro.lint.cli import main as lint_main
from repro.lint.engine import PARSE_RULE, CheckerRegistry
from repro.lint.report import render_json, render_text

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "lint_fixtures"
SIM = FIXTURES / "src" / "repro" / "sim"
NETSIM = FIXTURES / "src" / "repro" / "netsim"
RUNNER = FIXTURES / "src" / "repro" / "runner"

ALL_RULES = (
    "CLK-001", "DET-001", "FAST-001", "JSON-001", "RNG-001", "SLOTS-001",
)


def lint_fixture(path: Path, rule: str):
    """Lint one fixture file with a single rule selected."""
    return run_lint([path], select=[rule], exclude_dirs=())


class TestRuleFixtures:
    """Each rule flags its true positive and passes its clean snippet."""

    CASES = (
        ("RNG-001", SIM / "rng_bad.py", SIM / "rng_clean.py", 3),
        ("CLK-001", SIM / "clock_bad.py", SIM / "clock_clean.py", 3),
        ("DET-001", SIM / "det_bad.py", SIM / "det_clean.py", 2),
        ("SLOTS-001", NETSIM / "slots_bad.py", NETSIM / "slots_clean.py", 1),
        ("FAST-001", SIM / "fast_bad.py", SIM / "fast_clean.py", 3),
        ("JSON-001", RUNNER / "json_bad.py", RUNNER / "json_clean.py", 2),
    )

    @pytest.mark.parametrize(
        "rule,bad,clean,n_bad", CASES, ids=[c[0] for c in CASES]
    )
    def test_true_positive_and_clean(self, rule, bad, clean, n_bad):
        flagged = lint_fixture(bad, rule)
        assert flagged.exit_code == 1
        assert [f.rule for f in flagged.findings] == [rule] * n_bad

        ok = lint_fixture(clean, rule)
        assert ok.exit_code == 0
        assert ok.findings == []

    def test_clean_fixtures_clean_under_all_rules(self):
        # Clean snippets must not trip *any* rule, not just their own.
        for _, _, clean, _ in self.CASES:
            report = run_lint([clean], exclude_dirs=())
            assert report.findings == [], clean.name

    def test_findings_carry_fixture_module_names(self):
        # The src anchor inside lint_fixtures maps fixtures to repro.*
        # modules -- that is how module-scoped rules see them.
        report = lint_fixture(SIM / "rng_bad.py", "RNG-001")
        assert {f.module for f in report.findings} == {"repro.sim.rng_bad"}


class TestSuppression:
    def test_file_level_disable_silences_whole_file(self):
        report = lint_fixture(SIM / "suppress_file.py", "RNG-001")
        assert report.findings == []
        assert report.suppressed >= 1

    def test_line_level_disable_is_line_scoped(self):
        report = lint_fixture(SIM / "suppress_line.py", "RNG-001")
        # The annotated import line is silenced; the later use is not.
        assert [f.line for f in report.findings] == [7]
        assert report.suppressed == 1

    def test_disable_all_keyword(self, tmp_path):
        src = tmp_path / "src" / "repro" / "sim" / "mod.py"
        src.parent.mkdir(parents=True)
        src.write_text(
            "# repro-lint: disable=all\n"
            "import random\n"
        )
        report = run_lint([src], exclude_dirs=())
        assert report.findings == []
        assert report.suppressed >= 1


class TestEngine:
    def test_module_name_for(self):
        assert module_name_for(Path("src/repro/sim/core.py")) == (
            "repro.sim.core"
        )
        assert module_name_for(Path("src/repro/sim/__init__.py")) == (
            "repro.sim"
        )
        assert module_name_for(Path("tests/test_lint.py")) == (
            "tests.test_lint"
        )
        assert module_name_for(
            Path("tests/lint_fixtures/src/repro/netsim/slots_bad.py")
        ) == "repro.netsim.slots_bad"

    def test_parse_failure_becomes_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        report = run_lint([bad], exclude_dirs=())
        assert report.exit_code == 1
        assert [f.rule for f in report.findings] == [PARSE_RULE]

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            run_lint([SIM / "rng_bad.py"], select=["NOPE-999"],
                     exclude_dirs=())

    def test_duplicate_registration_rejected(self):
        reg = CheckerRegistry()

        @reg.register("X-001", "first")
        def first(src):
            return iter(())

        with pytest.raises(ValueError):
            reg.register("X-001", "second")(first)

    def test_registry_ships_all_six_rules(self):
        assert tuple(r.id for r in registry.rules()) == ALL_RULES

    def test_fixture_dir_pruned_by_default(self):
        # Linting tests/ skips the deliberately-broken corpus...
        report = run_lint([REPO / "tests"])
        assert not any(
            "lint_fixtures" in f.path for f in report.findings
        )
        assert report.exit_code == 0
        # ...but naming the corpus directory explicitly opts back in
        # (pruning applies below the given roots, not to them).
        assert run_lint([FIXTURES]).n_files > 0

    def test_findings_sorted_deterministically(self):
        report = run_lint([FIXTURES], exclude_dirs=())
        keys = [(f.path, f.line, f.col, f.rule) for f in report.findings]
        assert keys == sorted(keys)


class TestRealTreeClean:
    def test_repro_lint_clean_on_shipped_tree(self):
        report = run_lint(
            [REPO / "src", REPO / "tests"],
            exclude_dirs=DEFAULT_EXCLUDED_DIRS,
        )
        assert report.findings == [], render_text(report)
        assert report.n_files > 100


class TestReporters:
    def sample(self):
        return lint_fixture(RUNNER / "json_bad.py", "JSON-001")

    def test_text_report_lists_locations_and_summary(self):
        text = render_text(self.sample())
        assert "json_bad.py:8:4: JSON-001" in text
        assert "2 finding(s)" in text

    def test_text_report_clean(self):
        text = render_text(lint_fixture(RUNNER / "json_clean.py",
                                        "JSON-001"))
        assert text.startswith("clean:")

    def test_json_report_round_trips_and_is_nan_safe(self):
        payload = json.loads(render_json(self.sample()))
        assert payload["version"] == 1
        assert payload["summary"]["total"] == 2
        assert payload["summary"]["by_rule"] == {"JSON-001": 2}
        assert [f["rule"] for f in payload["findings"]] == ["JSON-001"] * 2
        assert payload["rules"][0]["id"] == "JSON-001"

    def test_finding_to_dict_round_trip(self):
        finding = self.sample().findings[0]
        assert Finding(**finding.to_dict()) == finding


class TestCli:
    def test_clean_run_exits_zero(self, capsys):
        assert lint_main([str(REPO / "src")]) == 0
        assert capsys.readouterr().out.startswith("clean:")

    def test_findings_exit_one_json(self, capsys):
        code = lint_main([
            str(RUNNER / "json_bad.py"), "--include-fixtures",
            "--format", "json",
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["by_rule"]["JSON-001"] == 2

    def test_out_writes_report_file(self, tmp_path, capsys):
        out = tmp_path / "lint.json"
        code = lint_main([
            str(REPO / "src"), "--format", "json", "--out", str(out),
        ])
        assert code == 0
        assert json.loads(out.read_text())["summary"]["total"] == 0
        assert capsys.readouterr().out == ""

    def test_select_and_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        listed = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule in listed
        assert lint_main([str(REPO / "src"), "--select", "RNG-001"]) == 0

    def test_unknown_rule_and_missing_path_exit_two(self, capsys):
        assert lint_main([str(REPO / "src"), "--select", "NOPE-1"]) == 2
        assert lint_main(["does/not/exist"]) == 2
        err = capsys.readouterr().err
        assert "unknown rule" in err
        assert "not found" in err

    def test_repro_bench_lint_subcommand(self, capsys):
        from repro.cli import main as bench_main

        assert bench_main(["lint", str(REPO / "src")]) == 0
        assert capsys.readouterr().out.startswith("clean:")
