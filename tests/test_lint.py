"""Tests for the repro.lint static analyzer.

Covers the engine (discovery, suppression, parse failures, registry),
each shipped rule against its fixture corpus under
``tests/lint_fixtures/`` (including the multi-file graph corpora for the
cross-module rules), the project graph builder, the SUPP-001 suppression
audit and STALE-001 allowlist audit, the reporters (including JSON
byte-determinism), and both CLI entry points -- plus the acceptance
gate: the real tree (``src``/``tests``/``benchmarks``/``examples``)
lints clean under every rule.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    DEFAULT_EXCLUDED_DIRS,
    Finding,
    checkers,
    flow,
    module_name_for,
    registry,
    run_lint,
)
from repro.lint.cli import main as lint_main
from repro.lint.engine import (
    PARSE_RULE,
    CheckerRegistry,
    SourceFile,
    iter_source_files,
)
from repro.lint.graph import ProjectGraph
from repro.lint.report import render_json, render_text

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "lint_fixtures"
SIM = FIXTURES / "src" / "repro" / "sim"
NETSIM = FIXTURES / "src" / "repro" / "netsim"
RUNNER = FIXTURES / "src" / "repro" / "runner"
SHARD = FIXTURES / "src" / "repro" / "shard"
BENCH = FIXTURES / "benchmarks"
GRAPH = FIXTURES / "graph"
GRAPH_CLEAN = FIXTURES / "graph_clean"

ALL_RULES = (
    "CLK-001", "DET-001", "FAST-001", "FLOAT-001", "FORK-001", "JSON-001",
    "MERGE-001", "RNG-001", "SEED-001", "SLOTS-001", "STALE-001", "SUPP-001",
)


def lint_fixture(path: Path, rule: str):
    """Lint one fixture file with a single rule selected."""
    return run_lint([path], select=[rule], exclude_dirs=())


class TestRuleFixtures:
    """Each rule flags its true positive and passes its clean snippet."""

    CASES = (
        ("RNG-001", SIM / "rng_bad.py", SIM / "rng_clean.py", 3),
        ("CLK-001", SIM / "clock_bad.py", SIM / "clock_clean.py", 3),
        ("DET-001", SIM / "det_bad.py", SIM / "det_clean.py", 2),
        ("SLOTS-001", NETSIM / "slots_bad.py", NETSIM / "slots_clean.py", 1),
        ("FAST-001", SIM / "fast_bad.py", SIM / "fast_clean.py", 3),
        ("JSON-001", RUNNER / "json_bad.py", RUNNER / "json_clean.py", 2),
        ("SEED-001", BENCH / "seed_bad.py", BENCH / "seed_clean.py", 3),
        ("MERGE-001", SHARD / "merge_bad.py", SHARD / "merge_clean.py", 3),
        ("FLOAT-001", SHARD / "float_bad.py", SHARD / "float_clean.py", 3),
    )

    @pytest.mark.parametrize(
        "rule,bad,clean,n_bad", CASES, ids=[c[0] for c in CASES]
    )
    def test_true_positive_and_clean(self, rule, bad, clean, n_bad):
        flagged = lint_fixture(bad, rule)
        assert flagged.exit_code == 1
        assert [f.rule for f in flagged.findings] == [rule] * n_bad

        ok = lint_fixture(clean, rule)
        assert ok.exit_code == 0
        assert ok.findings == []

    def test_clean_fixtures_clean_under_all_rules(self):
        # Clean snippets must not trip *any* rule, not just their own.
        for _, _, clean, _ in self.CASES:
            report = run_lint([clean], exclude_dirs=())
            assert report.findings == [], clean.name

    def test_findings_carry_fixture_module_names(self):
        # The src anchor inside lint_fixtures maps fixtures to repro.*
        # modules -- that is how module-scoped rules see them.
        report = lint_fixture(SIM / "rng_bad.py", "RNG-001")
        assert {f.module for f in report.findings} == {"repro.sim.rng_bad"}


class TestSuppression:
    def test_file_level_disable_silences_whole_file(self):
        report = lint_fixture(SIM / "suppress_file.py", "RNG-001")
        assert report.findings == []
        assert report.suppressed >= 1

    def test_line_level_disable_is_line_scoped(self):
        report = lint_fixture(SIM / "suppress_line.py", "RNG-001")
        # The annotated import line is silenced; the later use is not.
        assert [f.line for f in report.findings] == [7]
        assert report.suppressed == 1

    def test_disable_all_keyword(self, tmp_path):
        src = tmp_path / "src" / "repro" / "sim" / "mod.py"
        src.parent.mkdir(parents=True)
        src.write_text(
            "# repro-lint: disable=all\n"
            "import random\n"
        )
        report = run_lint([src], exclude_dirs=())
        assert report.findings == []
        assert report.suppressed >= 1


class TestEngine:
    def test_module_name_for(self):
        assert module_name_for(Path("src/repro/sim/core.py")) == (
            "repro.sim.core"
        )
        assert module_name_for(Path("src/repro/sim/__init__.py")) == (
            "repro.sim"
        )
        assert module_name_for(Path("tests/test_lint.py")) == (
            "tests.test_lint"
        )
        assert module_name_for(
            Path("tests/lint_fixtures/src/repro/netsim/slots_bad.py")
        ) == "repro.netsim.slots_bad"
        # Non-src anchors keep the anchor segment, so SEED-001's module
        # prefixes can target benchmarks/ and examples/ trees.
        assert module_name_for(
            Path("benchmarks/bench_ablation_topology.py")
        ) == "benchmarks.bench_ablation_topology"
        assert module_name_for(
            Path("tests/lint_fixtures/benchmarks/seed_bad.py")
        ) == "benchmarks.seed_bad"

    def test_parse_failure_becomes_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        report = run_lint([bad], exclude_dirs=())
        assert report.exit_code == 1
        assert [f.rule for f in report.findings] == [PARSE_RULE]

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            run_lint([SIM / "rng_bad.py"], select=["NOPE-999"],
                     exclude_dirs=())

    def test_duplicate_registration_rejected(self):
        reg = CheckerRegistry()

        @reg.register("X-001", "first")
        def first(src):
            return iter(())

        with pytest.raises(ValueError):
            reg.register("X-001", "second")(first)

    def test_registry_ships_all_twelve_rules(self):
        assert tuple(r.id for r in registry.rules()) == ALL_RULES

    def test_every_rule_carries_a_rationale(self):
        # --explain renders the checker docstring; an empty rationale
        # means someone registered a checker without documenting it.
        for rule in registry.rules():
            assert rule.rationale, rule.id

    def test_fixture_dir_pruned_by_default(self):
        # Linting tests/ skips the deliberately-broken corpus...
        report = run_lint([REPO / "tests"])
        assert not any(
            "lint_fixtures" in f.path for f in report.findings
        )
        assert report.exit_code == 0
        # ...but naming the corpus directory explicitly opts back in
        # (pruning applies below the given roots, not to them).
        assert run_lint([FIXTURES]).n_files > 0

    def test_findings_sorted_deterministically(self):
        report = run_lint([FIXTURES], exclude_dirs=())
        keys = [(f.path, f.line, f.col, f.rule) for f in report.findings]
        assert keys == sorted(keys)


def graph_sources(root: Path):
    """Parse a multi-file fixture corpus into SourceFile objects."""
    return [
        SourceFile(path, module_name_for(path), path.read_text())
        for path in iter_source_files([root], exclude_dirs=())
    ]


class TestProjectGraph:
    """The cross-module symbol/call graph under the FORK-001 corpus."""

    def test_reachability_crosses_modules_and_aliases(self):
        # _execute_demo (entry point) -> helper -> ws.COUNTS write and
        # -> _bump -> record, through a module alias and a
        # function-level from-import.
        graph = ProjectGraph(graph_sources(GRAPH))
        assert graph.is_reachable("repro.runner.jobs", "_execute_demo")
        assert graph.is_reachable("repro.runner.jobs", "helper")
        assert graph.is_reachable("repro.runner.jobs", "_bump")
        assert graph.is_reachable("repro.workerstate", "record")

    def test_unreached_writer_is_not_reachable(self):
        # ``untouched`` writes COUNTS but no entry point reaches it:
        # reachability, not mere writing, is the hazard.
        graph = ProjectGraph(graph_sources(GRAPH))
        assert not graph.is_reachable("repro.workerstate", "untouched")

    def test_writers_of_sees_local_alias_and_global_forms(self):
        graph = ProjectGraph(graph_sources(GRAPH))
        writers = {
            (w.module, w.qualname)
            for w in graph.writers_of("repro.workerstate", "COUNTS")
        }
        assert writers == {
            ("repro.runner.jobs", "helper"),       # ws.COUNTS[...] = 1
            ("repro.workerstate", "record"),       # COUNTS.setdefault(...)
            ("repro.workerstate", "untouched"),    # COUNTS.clear()
        }
        assert graph.writers_of("repro.workerstate", "GONE") == []

    def test_fork_rule_flags_only_worker_reachable_writes(self):
        report = run_lint([GRAPH], select=["FORK-001"], exclude_dirs=())
        assert report.exit_code == 1
        flagged = [(f.module, f.line) for f in report.findings]
        assert flagged == [
            ("repro.runner.jobs", 18),
            ("repro.workerstate", 16),
            ("repro.workerstate", 17),
        ]

    def test_clean_corpus_passes_every_rule(self):
        report = run_lint([GRAPH_CLEAN], exclude_dirs=())
        assert report.findings == [], render_text(report)


class TestSuppressionAudit:
    """SUPP-001: unused suppression comments are findings themselves."""

    def test_unused_suppression_flagged_on_full_run(self):
        report = run_lint([SIM / "supp_bad.py"], exclude_dirs=())
        assert report.exit_code == 1
        assert [(f.rule, f.line) for f in report.findings] == [
            ("SUPP-001", 3)
        ]

    def test_used_suppressions_pass_the_audit(self):
        report = run_lint([SIM / "supp_clean.py"], exclude_dirs=())
        assert report.findings == []
        assert report.suppressed == 2

    def test_audit_skipped_under_select(self):
        # --select runs a subset: a suppression for an unselected rule
        # is trivially unused, so the audit only runs on full sweeps.
        report = run_lint(
            [SIM / "supp_bad.py"], select=["RNG-001"], exclude_dirs=()
        )
        assert report.findings == []

    def test_suppression_text_inside_strings_is_inert(self, tmp_path):
        # Tokenize-based parsing: a disable marker inside a string
        # literal neither suppresses anything nor trips the audit.
        src = tmp_path / "mod.py"
        src.write_text('MARKER = "# repro-lint: disable=all"\n')
        report = run_lint([src], exclude_dirs=())
        assert report.findings == []
        assert report.suppressed == 0


class TestStaleAllowlists:
    """STALE-001: audited allowlist entries must still match real code."""

    def test_fast_allowlist_entry_matching_a_site_is_live(self, monkeypatch):
        monkeypatch.setattr(
            checkers, "FAST_PATH_ALLOWLIST",
            frozenset({("repro.sim.fast_bad", "hurry")}),
        )
        report = run_lint(
            [SIM / "fast_bad.py"], select=["STALE-001"], exclude_dirs=()
        )
        assert report.findings == []

    def test_fast_allowlist_entry_without_a_site_is_stale(self, monkeypatch):
        monkeypatch.setattr(
            checkers, "FAST_PATH_ALLOWLIST",
            frozenset({("repro.sim.fast_bad", "vanished")}),
        )
        report = run_lint(
            [SIM / "fast_bad.py"], select=["STALE-001"], exclude_dirs=()
        )
        assert [f.rule for f in report.findings] == ["STALE-001"]
        assert "vanished" in report.findings[0].message

    def test_fork_allowlist_entry_with_writers_is_live(self, monkeypatch):
        monkeypatch.setattr(
            flow, "FORK_STATE_ALLOWLIST",
            frozenset({("repro.workerstate", "COUNTS")}),
        )
        report = run_lint([GRAPH], select=["STALE-001"], exclude_dirs=())
        assert report.findings == []

    def test_fork_allowlist_entry_without_writers_is_stale(self, monkeypatch):
        monkeypatch.setattr(
            flow, "FORK_STATE_ALLOWLIST",
            frozenset({("repro.workerstate", "GONE")}),
        )
        report = run_lint([GRAPH], select=["STALE-001"], exclude_dirs=())
        assert [(f.rule, f.module) for f in report.findings] == [
            ("STALE-001", "repro.workerstate")
        ]

    def test_real_allowlists_are_not_stale(self):
        # The shipped FAST/FORK allowlists must keep matching real code;
        # TestRealTreeClean implies this, but pin it by name too.
        report = run_lint(
            [REPO / "src"], select=["STALE-001"],
            exclude_dirs=DEFAULT_EXCLUDED_DIRS,
        )
        assert report.findings == [], render_text(report)


class TestRealTreeClean:
    def test_repro_lint_clean_on_shipped_tree(self):
        report = run_lint(
            [REPO / "src", REPO / "tests", REPO / "benchmarks",
             REPO / "examples"],
            exclude_dirs=DEFAULT_EXCLUDED_DIRS,
        )
        assert report.findings == [], render_text(report)
        assert report.n_files > 100


class TestDeterminism:
    def test_json_report_byte_identical_across_runs(self):
        # The versioned JSON report is a CI artifact; two sweeps of the
        # same tree must serialize to identical bytes.
        paths = [REPO / "src", REPO / "benchmarks"]
        first = render_json(run_lint(paths))
        second = render_json(run_lint(paths))
        assert first == second

    def test_perf_guard_passes_on_shipped_tree(self):
        # The CI wall-time guard: the whole-tree sweep stays inside the
        # (deliberately loose) budget and exits zero.
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "lint_perf_guard.py")],
            capture_output=True, text=True, env=env, cwd=REPO,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "wall time" in proc.stdout


class TestReporters:
    def sample(self):
        return lint_fixture(RUNNER / "json_bad.py", "JSON-001")

    def test_text_report_lists_locations_and_summary(self):
        text = render_text(self.sample())
        assert "json_bad.py:8:4: JSON-001" in text
        assert "2 finding(s)" in text

    def test_text_report_clean(self):
        text = render_text(lint_fixture(RUNNER / "json_clean.py",
                                        "JSON-001"))
        assert text.startswith("clean:")

    def test_json_report_round_trips_and_is_nan_safe(self):
        payload = json.loads(render_json(self.sample()))
        assert payload["version"] == 1
        assert payload["summary"]["total"] == 2
        assert payload["summary"]["by_rule"] == {"JSON-001": 2}
        assert [f["rule"] for f in payload["findings"]] == ["JSON-001"] * 2
        assert payload["rules"][0]["id"] == "JSON-001"

    def test_finding_to_dict_round_trip(self):
        finding = self.sample().findings[0]
        assert Finding(**finding.to_dict()) == finding


class TestCli:
    def test_clean_run_exits_zero(self, capsys):
        assert lint_main([str(REPO / "src")]) == 0
        assert capsys.readouterr().out.startswith("clean:")

    def test_findings_exit_one_json(self, capsys):
        code = lint_main([
            str(RUNNER / "json_bad.py"), "--include-fixtures",
            "--format", "json",
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["by_rule"]["JSON-001"] == 2

    def test_out_writes_report_file(self, tmp_path, capsys):
        out = tmp_path / "lint.json"
        code = lint_main([
            str(REPO / "src"), "--format", "json", "--out", str(out),
        ])
        assert code == 0
        assert json.loads(out.read_text())["summary"]["total"] == 0
        assert capsys.readouterr().out == ""

    def test_select_and_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        listed = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule in listed
        assert lint_main([str(REPO / "src"), "--select", "RNG-001"]) == 0

    def test_unknown_rule_and_missing_path_exit_two(self, capsys):
        assert lint_main([str(REPO / "src"), "--select", "NOPE-1"]) == 2
        assert lint_main(["does/not/exist"]) == 2
        err = capsys.readouterr().err
        assert "unknown rule" in err
        assert "not found" in err

    def test_explain_prints_rule_rationale(self, capsys):
        assert lint_main(["--explain", "SEED-001"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("SEED-001:")
        assert "derive_seed" in out

    def test_explain_unknown_rule_exits_two(self, capsys):
        assert lint_main(["--explain", "NOPE-999"]) == 2
        err = capsys.readouterr().err
        assert "unknown rule" in err
        assert "SEED-001" in err  # the listing names the known rules

    def test_no_paths_defaults_to_whole_tree(self, capsys, monkeypatch):
        # CI runs `repro-lint` bare; the default roots must cover the
        # benchmark and example trees, not just src/tests.
        monkeypatch.chdir(REPO)
        assert lint_main([]) == 0
        out = capsys.readouterr().out
        assert out.startswith("clean:")

    def test_repro_bench_lint_subcommand(self, capsys):
        from repro.cli import main as bench_main

        assert bench_main(["lint", str(REPO / "src")]) == 0
        assert capsys.readouterr().out.startswith("clean:")
