"""Tests for the electrical baseline network simulators."""

import random

import pytest

from repro.electrical import (
    DragonflyNetwork,
    FatTreeNetwork,
    IdealNetwork,
    MultiButterflyNetwork,
)
from repro.errors import ConfigurationError


def run_permutation(net, n, packets_per_node=5, gap_ns=500.0, seed=0):
    rng = random.Random(seed)
    perm = list(range(n))
    rng.shuffle(perm)
    for src in range(n):
        dst = perm[src] if perm[src] != src else (src + 1) % n
        for j in range(packets_per_node):
            net.submit(src, dst, time=j * gap_ns)
    return net.run(until=50_000_000)


class TestIdealNetwork:
    def test_flat_latency(self):
        net = IdealNetwork(16)
        stats = run_permutation(net, 16)
        assert stats.average_latency == pytest.approx(200.0)
        assert stats.tail_latency == pytest.approx(200.0)

    def test_custom_latency(self):
        net = IdealNetwork(8, latency_ns=50.0)
        net.submit(0, 1, time=0.0)
        stats = net.run()
        assert stats.average_latency == pytest.approx(50.0)

    def test_endpoint_validation(self):
        net = IdealNetwork(8)
        with pytest.raises(ConfigurationError):
            net.submit(0, 0)
        with pytest.raises(ConfigurationError):
            net.submit(0, 8)

    def test_submit_in_past_rejected(self):
        net = IdealNetwork(8)
        net.submit(0, 1, time=100.0)
        net.run()
        with pytest.raises(ConfigurationError):
            net.submit(0, 1, time=50.0)

    def test_receive_hook_closed_loop(self):
        # Ping-pong on the ideal network: each RTT is exactly 400 ns.
        net = IdealNetwork(4)
        times = []

        def hook(packet, time):
            times.append(time)
            if len(times) < 4:
                net.submit(packet.dst, packet.src, time=time)

        net.receive_hook = hook
        net.submit(0, 1, time=0.0)
        net.run()
        assert times == [200.0, 400.0, 600.0, 800.0]


class TestMultiButterflyNetwork:
    def test_all_delivered(self):
        net = MultiButterflyNetwork(32, multiplicity=2, seed=1)
        stats = run_permutation(net, 32)
        assert stats.delivered == stats.injected

    def test_unloaded_latency_budget(self):
        # 5 stages x 90 ns + injection/ejection links + one serialization.
        net = MultiButterflyNetwork(32, multiplicity=2, seed=1)
        net.submit(0, 17, time=0.0)
        stats = net.run()
        expected_min = 5 * 90 + 2 * 100 + 204.8
        assert stats.average_latency >= expected_min
        assert stats.average_latency < expected_min + 200

    def test_no_drops_in_electrical_network(self):
        net = MultiButterflyNetwork(32, multiplicity=2, seed=1)
        stats = run_permutation(net, 32, packets_per_node=10, gap_ns=250.0)
        assert stats.drops == 0
        assert stats.delivered == stats.injected

    def test_latency_grows_with_load(self):
        light = run_permutation(
            MultiButterflyNetwork(32, 2, seed=1), 32, 10, gap_ns=2000.0
        )
        heavy = run_permutation(
            MultiButterflyNetwork(32, 2, seed=1), 32, 10, gap_ns=210.0
        )
        assert heavy.average_latency > light.average_latency

    def test_multiplicity_one_works(self):
        net = MultiButterflyNetwork(16, multiplicity=1, seed=0)
        stats = run_permutation(net, 16)
        assert stats.delivered == stats.injected


class TestFatTreeNetwork:
    def test_all_delivered(self):
        net = FatTreeNetwork(54, seed=1)  # k=6 tree, 54 hosts
        stats = run_permutation(net, 54)
        assert stats.delivered == stats.injected

    def test_same_edge_is_fast(self):
        net = FatTreeNetwork(16, seed=0)
        net.submit(0, 1, time=0.0)  # same edge switch
        stats = net.run()
        # 1 switch hop: 90 ns + 2 x 10 ns links + serialization.
        assert stats.average_latency == pytest.approx(90 + 20 + 204.8, rel=0.1)

    def test_cross_pod_is_slower(self):
        same_edge = FatTreeNetwork(16, seed=0)
        same_edge.submit(0, 1, time=0.0)
        cross = FatTreeNetwork(16, seed=0)
        cross.submit(0, 15, time=0.0)
        a = same_edge.run().average_latency
        b = cross.run().average_latency
        assert b > a + 400  # 4 more switch hops

    def test_adaptive_spreads_up_ports(self):
        # Saturating one destination must not deadlock the whole tree.
        net = FatTreeNetwork(16, seed=0)
        for src in range(1, 9):
            for j in range(5):
                net.submit(src, 0, time=j * 300.0)
        stats = net.run(until=10_000_000)
        assert stats.delivered == stats.injected


class TestDragonflyNetwork:
    def test_all_delivered(self):
        net = DragonflyNetwork(36, seed=1)  # p=2: a=4,h=2,g=9 -> 72 nodes
        stats = run_permutation(net, 36)
        assert stats.delivered == stats.injected

    def test_same_router_terminal_hop(self):
        net = DragonflyNetwork(36, seed=0)
        net.submit(0, 1, time=0.0)  # same router (p >= 2)
        stats = net.run()
        # 1 router, terminal links both sides.
        assert stats.average_latency == pytest.approx(90 + 20 + 204.8, rel=0.1)

    def test_cross_group_uses_global_link(self):
        net = DragonflyNetwork(36, seed=0, adaptive=False)
        far = net.topology.p * net.topology.a * 3  # node in group 3
        net.submit(0, far, time=0.0)
        stats = net.run()
        # At least one 100 ns global link on the path.
        assert stats.average_latency > 90 + 100 + 204.8

    def test_minimal_routing_when_adaptive_disabled(self):
        net = DragonflyNetwork(36, seed=0, adaptive=False)
        stats = run_permutation(net, 36)
        assert stats.delivered == stats.injected

    def test_adaptive_beats_minimal_under_adversarial_traffic(self):
        # Every node in group 0 sends to group 1: minimal routing funnels
        # into one global channel; UGAL spreads over intermediate groups.
        def adversarial(net, n_per_group):
            for src in range(n_per_group):
                dst = n_per_group + src
                for j in range(6):
                    net.submit(src, dst, time=j * 300.0)
            return net.run(until=100_000_000)

        n = DragonflyNetwork(72, seed=1, adaptive=False)
        per_group = n.topology.p * n.topology.a
        minimal = adversarial(n, per_group)
        adaptive = adversarial(DragonflyNetwork(72, seed=1, adaptive=True),
                               per_group)
        assert adaptive.average_latency < minimal.average_latency

    def test_vc_escalation_on_plan(self):
        # Valiant paths must escalate VCs monotonically (deadlock freedom).
        net = DragonflyNetwork(72, seed=1)
        ports, vcs = net._path_ports(0, net.topology.p * net.topology.a * 5, 2)
        assert vcs == sorted(vcs)
        assert vcs[-1] <= 2
