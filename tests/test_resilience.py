"""Tests for the fault-injection & resilience subsystem (repro.faults)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.resilience import (
    degraded_mode_comparison,
    resilience_sweep,
    run_with_failures,
)
from repro.core import BaldurNetwork
from repro.core.diagnosis import run_diagnosis
from repro.errors import (
    ConfigurationError,
    FaultInjectionError,
    InvariantViolationError,
)
from repro.faults import (
    ChaosSchedule,
    DegradedLink,
    FailStop,
    FaultInjector,
    SlowGateDrift,
    audit_conservation,
    degraded_link_from_jitter,
)
from repro.traffic import inject_open_loop, random_permutation, transpose


class TestFaultModels:
    def test_permanent_by_default(self):
        fault = FailStop(3)
        assert fault.active(0.0) and fault.active(1e12)
        assert not fault.transient

    def test_transient_window(self):
        fault = FailStop(3, start_ns=100.0, end_ns=200.0)
        assert fault.transient
        assert not fault.active(99.9)
        assert fault.active(100.0) and fault.active(199.9)
        assert not fault.active(200.0)

    @pytest.mark.parametrize("kwargs", [
        dict(switch_id=-1),
        dict(switch_id=0, start_ns=-1.0),
        dict(switch_id=0, start_ns=5.0, end_ns=5.0),
        dict(switch_id=0, start_ns=5.0, end_ns=4.0),
    ])
    def test_invalid_windows_rejected(self, kwargs):
        with pytest.raises(FaultInjectionError):
            FailStop(**kwargs)

    def test_corruption_prob_validated(self):
        with pytest.raises(FaultInjectionError):
            DegradedLink(0, corruption_prob=1.5)
        with pytest.raises(FaultInjectionError):
            DegradedLink(0, corruption_prob=-0.1)

    def test_slow_gate_drift_grows(self):
        fault = SlowGateDrift(
            0, start_ns=0.0, extra_latency_ns=2.0, drift_ns_per_ms=1.0
        )
        assert fault.extra_at(0.0) == pytest.approx(2.0)
        assert fault.extra_at(1e6) == pytest.approx(3.0)  # +1 ns after 1 ms
        with pytest.raises(FaultInjectionError):
            SlowGateDrift(0, extra_latency_ns=-1.0)

    def test_degraded_link_from_jitter(self):
        # Healthy variance: negligible corruption.
        healthy = degraded_link_from_jitter(0, jitter_variance_ps2=1.53)
        assert healthy.corruption_prob < 1e-4
        # Badly degraded jitter: near-certain corruption per packet.
        broken = degraded_link_from_jitter(0, jitter_variance_ps2=100.0)
        assert broken.corruption_prob > 0.99
        with pytest.raises(FaultInjectionError):
            degraded_link_from_jitter(0, jitter_variance_ps2=0.0)


class TestFaultInjector:
    def test_fail_stop_drops_deterministically(self):
        inj = FaultInjector([FailStop(7)])
        assert inj.failed(7, 0.0)
        assert inj.check_drop(7, 0.0)
        assert not inj.check_drop(8, 0.0)
        assert inj.drops_by_switch == {7: 1}

    def test_window_respected(self):
        inj = FaultInjector([FailStop(7, start_ns=10.0, end_ns=20.0)])
        assert not inj.check_drop(7, 5.0)
        assert inj.check_drop(7, 15.0)
        assert not inj.check_drop(7, 25.0)

    def test_corruption_probabilities_compose(self):
        inj = FaultInjector([
            DegradedLink(2, corruption_prob=0.5),
            DegradedLink(2, corruption_prob=0.5),
        ])
        assert inj.corruption_prob(2, 0.0) == pytest.approx(0.75)

    def test_corruption_draws_are_seeded(self):
        def draws(seed):
            inj = FaultInjector(
                [DegradedLink(0, corruption_prob=0.5)], seed=seed
            )
            return [inj.check_drop(0, 0.0) for _ in range(50)]

        assert draws(1) == draws(1)
        assert draws(1) != draws(2)

    def test_extra_latency_sums_drift_faults(self):
        inj = FaultInjector([
            SlowGateDrift(4, extra_latency_ns=1.0),
            SlowGateDrift(4, extra_latency_ns=2.5),
        ])
        assert inj.extra_latency_ns(4, 0.0) == pytest.approx(3.5)
        assert inj.extra_latency_ns(5, 0.0) == 0.0

    def test_rejects_non_fault(self):
        with pytest.raises(FaultInjectionError):
            FaultInjector(["not a fault"])


class TestChaosSchedule:
    def test_deterministic_per_seed(self):
        chaos = ChaosSchedule(
            mtbf_ns=1e5, mttr_ns=2e4, horizon_ns=1e6, seed=7
        )
        assert chaos.faults_for([0, 1, 2]) == chaos.faults_for([0, 1, 2])
        other = ChaosSchedule(
            mtbf_ns=1e5, mttr_ns=2e4, horizon_ns=1e6, seed=8
        )
        assert chaos.faults_for([0]) != other.faults_for([0])

    def test_per_switch_streams_independent(self):
        chaos = ChaosSchedule(
            mtbf_ns=1e5, mttr_ns=2e4, horizon_ns=1e6, seed=7
        )
        # Switch 1's timeline does not depend on who else participates.
        alone = [f for f in chaos.faults_for([1])]
        grouped = [
            f for f in chaos.faults_for([0, 1, 2]) if f.switch_id == 1
        ]
        assert alone == grouped

    def test_windows_are_transient_and_inside_horizon(self):
        chaos = ChaosSchedule(
            mtbf_ns=5e4, mttr_ns=1e4, horizon_ns=1e6, seed=0
        )
        faults = chaos.faults_for(range(8))
        assert faults, "expect some failures over 20 MTBFs"
        for fault in faults:
            assert fault.transient
            assert 0.0 <= fault.start_ns < 1e6
            assert fault.end_ns > fault.start_ns

    def test_availability(self):
        chaos = ChaosSchedule(
            mtbf_ns=9e5, mttr_ns=1e5, horizon_ns=1e6
        )
        assert chaos.availability == pytest.approx(0.9)

    def test_degraded_kind(self):
        chaos = ChaosSchedule(
            mtbf_ns=5e4, mttr_ns=1e4, horizon_ns=1e6,
            kind="degraded", corruption_prob=0.25,
        )
        faults = chaos.faults_for([0])
        assert faults and all(
            isinstance(f, DegradedLink) and f.corruption_prob == 0.25
            for f in faults
        )

    @pytest.mark.parametrize("kwargs", [
        dict(mtbf_ns=0.0, mttr_ns=1.0, horizon_ns=1.0),
        dict(mtbf_ns=1.0, mttr_ns=0.0, horizon_ns=1.0),
        dict(mtbf_ns=1.0, mttr_ns=1.0, horizon_ns=0.0),
        dict(mtbf_ns=1.0, mttr_ns=1.0, horizon_ns=1.0, kind="meteor"),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(FaultInjectionError):
            ChaosSchedule(**kwargs)


NETWORK_SIZES = {
    "baldur": 16,
    "multibutterfly": 16,
    "dragonfly": 32,
    "fattree": 16,
    "ideal": 16,
}


class TestConservationProperty:
    @given(
        seed=st.integers(0, 10_000),
        load=st.floats(0.1, 0.9),
        k=st.integers(0, 2),
        pattern=st.sampled_from(["random_permutation", "transpose"]),
    )
    @settings(max_examples=12, deadline=None)
    def test_all_networks_conserve_packets(self, seed, load, k, pattern):
        from repro.analysis.experiments import build_network

        for name, n in NETWORK_SIZES.items():
            net = build_network(name, n, seed)
            failed = list(net.switch_ids())[:k]
            if failed:
                net.attach_faults(
                    FaultInjector([FailStop(sid) for sid in failed],
                                  seed=seed)
                )
            destinations = (
                transpose(n)
                if pattern == "transpose"
                else random_permutation(n, seed)
            )
            inject_open_loop(net, destinations, load, 3, seed=seed)
            net.run()
            ledger = audit_conservation(net)  # raises on violation
            assert ledger["balance"] == 0, (name, ledger)
            # transpose has fixed points that inject nothing
            assert 0 < ledger["injected"] <= 3 * n

    def test_audit_raises_on_tampered_ledger(self):
        net = BaldurNetwork(16, multiplicity=2, seed=0)
        inject_open_loop(net, random_permutation(16, 0), 0.3, 2, seed=0)
        net.run()
        net.stats.injected += 1  # simulate a leak
        with pytest.raises(InvariantViolationError):
            net.audit()


class TestRetransmissionHardening:
    def test_give_up_then_late_delivery_counts_once(self):
        # Regression for the retransmission race: with a timeout shorter
        # than the network flight time and a single attempt, the source
        # gives the packet up while it is still in flight.  At-most-once
        # delivery requires the late copy to be suppressed -- the packet
        # must not be counted both given-up and delivered.
        net = BaldurNetwork(
            16, multiplicity=2, seed=0, timeout_ns=50.0, max_attempts=1
        )
        net.submit(0, 9, time=0.0)
        stats = net.run()
        ledger = net.audit()
        assert ledger["balance"] == 0
        assert stats.delivered + stats.given_up == 1
        assert stats.given_up == 1 and stats.delivered == 0
        assert net.unreachable == {(0, 9): 1}
        assert net.lost_packets == 1

    def test_give_up_reports_unreachable_flows(self):
        net = BaldurNetwork(
            16, multiplicity=2, seed=0, timeout_ns=10.0, max_attempts=2
        )
        for i in range(3):
            net.submit(1, 6, time=i * 5_000.0)
        net.run()
        net.audit()
        assert net.unreachable.get((1, 6)) == 3

    def test_ack_loss_does_not_double_deliver(self):
        # Filter every ACK: data packets arrive once, the source keeps
        # retransmitting and finally gives up, but at-most-once delivery
        # means the destination records exactly one delivery per packet.
        net = BaldurNetwork(
            16,
            multiplicity=2,
            seed=0,
            max_attempts=3,
            packet_filter=lambda p: p.is_ack,
        )
        for i in range(4):
            net.submit(i, (i + 5) % 16, time=i * 200.0)
        stats = net.run()
        ledger = net.audit()
        assert ledger["balance"] == 0
        assert stats.delivered == 4  # each packet delivered exactly once
        assert stats.given_up == 0   # delivered, so not conservation-lost
        assert net.lost_packets == 4  # but the sources never learned it

    def test_normal_run_has_no_give_ups(self):
        net = BaldurNetwork(16, multiplicity=4, seed=0)
        inject_open_loop(net, random_permutation(16, 0), 0.5, 5, seed=0)
        stats = net.run()
        assert stats.given_up == 0
        assert net.unreachable == {}
        assert stats.delivered == stats.injected


class TestDegradedMode:
    def test_masking_strictly_lowers_drop_rate(self):
        cmp = degraded_mode_comparison(
            n_nodes=32, packets_per_node=10, seed=0
        )
        assert cmp["masked"]["drop_rate"] < cmp["unmasked"]["drop_rate"]
        assert cmp["masked"]["delivered"] == cmp["masked"]["injected"]

    def test_mask_validation_and_unmask(self):
        net = BaldurNetwork(16, multiplicity=2, seed=0)
        with pytest.raises(ConfigurationError):
            net.mask_switch(99, 0)
        net.mask_switch(1, 2)
        assert (1, 2) in net.masked_switches
        net.unmask_switch(1, 2)
        assert net.masked_switches == set()

    def test_masked_faulty_switch_sees_no_traffic(self):
        net = BaldurNetwork(32, multiplicity=4, seed=0)
        net.inject_fault(1, 3)
        net.mask_switch(1, 3)
        net.record_paths = True
        inject_open_loop(net, random_permutation(32, 0), 0.3, 5, seed=0)
        net.run()
        flat = net.flat_switch_id(1, 3)
        for path in net.paths.values():
            assert flat not in path


class TestResilienceDrivers:
    def test_run_with_failures_row_shape(self):
        row = run_with_failures("baldur", 16, 1, packets_per_node=3)
        assert row["network"] == "baldur"
        assert row["k_failed"] == 1 and len(row["failed_switches"]) == 1
        assert row["balance"] == 0

    def test_sweep_covers_grid(self):
        rows = resilience_sweep(
            n_nodes=16, failure_counts=(0, 1),
            networks=("baldur", "ideal"), packets_per_node=2,
        )
        assert len(rows) == 4
        assert all(r["balance"] == 0 for r in rows)
        # The ideal network has no switches to fail.
        assert all(
            r["k_failed"] == 0 for r in rows if r["network"] == "ideal"
        )

    def test_chaos_schedule_applies(self):
        chaos = ChaosSchedule(
            mtbf_ns=50_000.0, mttr_ns=50_000.0, horizon_ns=1e6, seed=0
        )
        row = run_with_failures(
            "baldur", 16, 2, packets_per_node=5, chaos=chaos
        )
        assert row["balance"] == 0

    def test_more_failures_never_help_baldur(self):
        rows = {
            r["k_failed"]: r
            for r in resilience_sweep(
                n_nodes=16, failure_counts=(0, 4),
                networks=("baldur",), packets_per_node=5, load=0.5,
            )
        }
        assert rows[0]["drop_rate"] == 0.0
        assert rows[4]["drop_rate"] > 0.0


class TestMultiFaultDiagnosis:
    def test_zero_faults_reports_clean(self):
        report = run_diagnosis(16, [], multiplicity=4, n_probes=16)
        assert report["candidates"] == []
        assert report["injected_flat_ids"] == []
        assert report["isolated"]
        assert report["probes_lost"] == 0
        assert "injected_flat_id" not in report

    def test_single_fault_back_compat(self):
        report = run_diagnosis(16, (1, 3), multiplicity=4, n_probes=64)
        assert report["isolated"]
        assert report["injected_flat_id"] == report["injected_flat_ids"][0]

    def test_two_faults_isolated(self):
        report = run_diagnosis(
            16, [(1, 2), (2, 5)], multiplicity=4, n_probes=64
        )
        assert report["isolated"]
        assert len(report["injected_flat_ids"]) == 2

    def test_malformed_fault_specs_rejected(self):
        for bad in [(1,), (1, 2, 3), [(1, "a")], 5, [((0,), 1)]]:
            with pytest.raises(ConfigurationError):
                run_diagnosis(16, bad, n_probes=4)


class TestLedgerExposure:
    def test_conservation_dict_keys(self):
        net = BaldurNetwork(16, multiplicity=2, seed=0)
        net.submit(0, 5, time=0.0)
        net.run()
        ledger = net.stats.conservation()
        assert ledger == {
            "injected": 1, "delivered": 1, "terminal_drops": 0,
            "given_up": 0, "in_flight": 0, "balance": 0,
        }
        assert "given_up" in net.stats.summary()

    def test_in_flight_counts_unfinished_packets(self):
        net = BaldurNetwork(16, multiplicity=2, seed=0)
        net.submit(0, 5, time=0.0)
        net.env.run(until=1.0)  # stop mid-flight
        ledger = net.audit()
        assert ledger["in_flight"] == 1 and ledger["balance"] == 0

    def test_format_ledger(self):
        from repro.faults import format_ledger

        net = BaldurNetwork(16, multiplicity=2, seed=0)
        net.submit(0, 5, time=0.0)
        net.run()
        text = format_ledger(net.audit())
        assert "injected" in text and "delivered" in text


def test_degraded_link_transient_matches_math():
    fault = DegradedLink(0, start_ns=10.0, end_ns=20.0, corruption_prob=0.5)
    inj = FaultInjector([fault])
    assert inj.corruption_prob(0, 15.0) == pytest.approx(0.5)
    assert inj.corruption_prob(0, 25.0) == 0.0
    assert math.isinf(FailStop(0).end_ns)
