"""Tests for the eye-diagram simulation (Fig. 2c) and the multiplicity-m
gate-level switch (Sec. IV-E)."""

import pytest

from repro.errors import ConfigurationError
from repro.tl.encoding import decode_packet
from repro.tl.eye import simulate_eye
from repro.tl.multi_switch import TLMultiplicitySwitchCircuit

T = 40.0


class TestEyeDiagram:
    def test_eye_open_at_60gbps(self):
        # Fig. 2c: sufficient eye opening at the TL gate's native rate.
        eye = simulate_eye(data_rate_gbps=60.0, n_bits=128)
        assert eye.vertical_opening > 0.5
        assert eye.horizontal_opening > 0.4

    def test_eye_closes_at_absurd_rate(self):
        # At 300 Gbps the 9 ps edges consume the whole bit period.
        fast = simulate_eye(data_rate_gbps=300.0, n_bits=128)
        slow = simulate_eye(data_rate_gbps=60.0, n_bits=128)
        assert fast.horizontal_opening < slow.horizontal_opening

    def test_eye_degrades_with_jitter(self):
        clean = simulate_eye(n_bits=128, jitter_variance_ps2=0.1)
        noisy = simulate_eye(n_bits=128, jitter_variance_ps2=30.0)
        assert noisy.horizontal_opening <= clean.horizontal_opening

    def test_render_produces_grid(self):
        eye = simulate_eye(n_bits=64)
        art = eye.render(width=40, height=8)
        assert len(art.splitlines()) == 8
        assert "#" in art or "*" in art

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simulate_eye(n_bits=2)
        with pytest.raises(ConfigurationError):
            simulate_eye(data_rate_gbps=0)

    def test_deterministic(self):
        a = simulate_eye(n_bits=64, seed=5)
        b = simulate_eye(n_bits=64, seed=5)
        assert (a.traces == b.traces).all()


class TestMultiplicitySwitch:
    def test_two_contenders_both_pass_with_m2(self):
        switch = TLMultiplicitySwitchCircuit(2, T)
        switch.inject(0, 0, [0, 1], b"\x11")
        switch.inject(0, 1, [0, 0], b"\x22")
        switch.run(until_ps=5000)
        assert switch.lit_outputs(0) == [0, 1]
        assert switch.lit_outputs(1) == []

    def test_third_contender_dropped_with_m2(self):
        switch = TLMultiplicitySwitchCircuit(2, T)
        switch.inject(0, 0, [1, 1], b"\x31")
        switch.inject(0, 1, [1, 0], b"\x32")
        switch.inject(1, 0, [1, 1], b"\x33")
        switch.run(until_ps=5000)
        assert len(switch.lit_outputs(1)) == 2  # only m ports available

    def test_payloads_intact_and_masked(self):
        switch = TLMultiplicitySwitchCircuit(2, T)
        switch.inject(0, 0, [0, 1], b"\xab\xcd")
        switch.run(until_ps=5000)
        port = switch.lit_outputs(0)[0]
        bits, payload = decode_packet(
            switch.output(0, port).waveform(), 1, bit_period=T
        )
        assert bits == [1]
        assert payload == b"\xab\xcd"

    def test_disjoint_directions_no_interference(self):
        switch = TLMultiplicitySwitchCircuit(3, T)
        switch.inject(0, 0, [0], b"\x01")
        switch.inject(1, 0, [1], b"\x02")
        switch.run(until_ps=5000)
        assert len(switch.lit_outputs(0)) == 1
        assert len(switch.lit_outputs(1)) == 1

    def test_m1_matches_base_switch_behaviour(self):
        switch = TLMultiplicitySwitchCircuit(1, T)
        switch.inject(0, 0, [0, 1], b"\x44")
        switch.run(until_ps=5000)
        assert switch.lit_outputs(0) == [0]

    def test_gate_count_grows_superlinearly(self):
        counts = [
            TLMultiplicitySwitchCircuit(m, T).gate_count for m in (1, 2, 4)
        ]
        assert counts[1] > 1.7 * counts[0]
        assert counts[2] > 1.7 * counts[1]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TLMultiplicitySwitchCircuit(0, T)
        with pytest.raises(ConfigurationError):
            TLMultiplicitySwitchCircuit(2, 0.0)

    def test_sequential_check_delays_later_ports(self):
        # The second winner's grant (port 1) rises one check time after a
        # hypothetical port-0 grant would -- the Table V latency growth.
        switch = TLMultiplicitySwitchCircuit(2, T)
        switch.inject(0, 0, [0], b"\x01")
        switch.inject(0, 1, [0], b"\x02")
        switch.run(until_ps=5000)
        grant_times = []
        for i in range(2):
            for p in range(2):
                sig = switch.grants[i][0][p]
                sig.record()
        # Re-run on a fresh switch with recording enabled from the start.
        switch = TLMultiplicitySwitchCircuit(2, T)
        for i in range(4):
            for d in (0, 1):
                for p in range(switch.multiplicity):
                    switch.grants[i][d][p].record()
        switch.inject(0, 0, [0], b"\x01")
        switch.inject(0, 1, [0], b"\x02")
        switch.run(until_ps=5000)
        rises = sorted(
            t
            for i in range(4)
            for p in range(2)
            for t in switch.grants[i][0][p].rise_times()
        )
        assert len(rises) == 2
        assert rises[1] > rises[0]
