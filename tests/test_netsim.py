"""Tests for the packet-level substrate: packets, stats, ports, buffers."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.netsim import LatencyStats, Packet, VCBuffer, geomean
from repro.netsim.switch import Host, OutputPort, Switch
from repro.sim import Environment


class TestPacket:
    def test_latency_none_until_delivered(self):
        p = Packet(0, 1, 2, create_time=100.0)
        assert p.latency is None
        p.deliver_time = 350.0
        assert p.latency == 250.0

    def test_serialization_time(self):
        p = Packet(0, 1, 2, size_bytes=512)
        # 512 B x 8 x 1.25 (8b/10b) / 25 Gbps = 204.8 ns.
        assert p.serialization_time_ns() == pytest.approx(204.8)

    def test_ack_flag(self):
        ack = Packet(1, 2, 1, is_ack=True, acked_pid=0)
        assert ack.is_ack and ack.acked_pid == 0


class TestLatencyStats:
    def test_average_and_tail(self):
        stats = LatencyStats()
        for v in range(1, 101):
            stats.record_delivery(float(v))
        assert stats.average_latency == pytest.approx(50.5)
        assert stats.tail_latency == 99.0

    def test_percentile_validation(self):
        stats = LatencyStats()
        stats.record_delivery(1.0)
        with pytest.raises(ValueError):
            stats.percentile(0)

    def test_empty_stats_nan(self):
        import math
        stats = LatencyStats()
        assert math.isnan(stats.average_latency)
        assert math.isnan(stats.tail_latency)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats().record_delivery(-1.0)

    def test_drop_rate_counts_retransmissions(self):
        stats = LatencyStats()
        for _ in range(90):
            stats.record_injection()
        for _ in range(10):
            stats.record_retransmission()
        for _ in range(10):
            stats.record_drop()
        assert stats.drop_rate == pytest.approx(0.1)

    def test_ack_drops_separate(self):
        stats = LatencyStats()
        stats.record_injection()
        stats.record_drop(is_ack=True)
        assert stats.ack_drops == 1
        assert stats.drops == 0

    def test_summary_keys(self):
        stats = LatencyStats()
        stats.record_injection()
        stats.record_delivery(5.0)
        summary = stats.summary()
        assert summary["delivered"] == 1
        assert summary["avg_latency_ns"] == 5.0

    def test_geomean(self):
        assert geomean([1.0, 100.0]) == pytest.approx(10.0)

    def test_geomean_degrades_to_nan_with_warning(self):
        # Empty/zero/NaN inputs degrade to NaN (one bad sweep cell must
        # not crash a whole report) and warn so they are not silent.
        with pytest.warns(RuntimeWarning):
            assert math.isnan(geomean([]))
        with pytest.warns(RuntimeWarning):
            assert math.isnan(geomean([1.0, 0.0]))
        with pytest.warns(RuntimeWarning):
            assert math.isnan(geomean([1.0, -2.0]))
        with pytest.warns(RuntimeWarning):
            assert math.isnan(geomean([1.0, float("nan")]))


class TestVCBuffer:
    def test_capacity_split_across_vcs(self):
        buf = VCBuffer(capacity_bytes=24 * 1024, n_vcs=3)
        assert buf.capacity_per_vc == 8 * 1024

    def test_reserve_release(self):
        buf = VCBuffer(capacity_bytes=3000, n_vcs=3)
        assert buf.has_room(0, 1000)
        buf.reserve(0, 1000)
        assert not buf.has_room(0, 1)
        assert buf.has_room(1, 1000)  # other VCs unaffected
        buf.release(0, 1000, time=0.0)
        assert buf.has_room(0, 1000)

    def test_release_below_zero_raises(self):
        buf = VCBuffer(capacity_bytes=3000)
        with pytest.raises(ConfigurationError):
            buf.release(0, 10, time=0.0)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            VCBuffer(capacity_bytes=0)

    def test_release_wakes_waiters(self):
        env = Environment()
        buf = VCBuffer(capacity_bytes=600, n_vcs=1)
        port = OutputPort(env, rate_gbps=25.0, link_delay_ns=10.0)
        sw = Switch(env, sid=0, latency_ns=1.0)
        port.connect_switch(sw, buf)
        buf.reserve(0, 600)  # buffer full
        p = Packet(0, 0, 1, size_bytes=512)
        port.enqueue(p, 0.0)
        assert not port.busy  # stalled on credit
        buf.release(0, 600, time=0.0)
        assert port.busy  # started as soon as credit appeared


class TestOutputPortAndHost:
    def _delivery_net(self):
        env = Environment()
        port = OutputPort(env, rate_gbps=25.0, link_delay_ns=100.0)
        delivered = []
        port.connect_host(lambda p, t: delivered.append((p.pid, t)))
        return env, port, delivered

    def test_delivery_time_includes_tx_and_link(self):
        env, port, delivered = self._delivery_net()
        port.enqueue(Packet(7, 0, 1, size_bytes=512), 0.0)
        env.run()
        assert delivered == [(7, pytest.approx(204.8 + 100.0))]

    def test_serialization_is_fifo_and_back_to_back(self):
        env, port, delivered = self._delivery_net()
        port.enqueue(Packet(0, 0, 1, size_bytes=512), 0.0)
        port.enqueue(Packet(1, 0, 1, size_bytes=512), 0.0)
        env.run()
        assert delivered[0][1] == pytest.approx(304.8)
        assert delivered[1][1] == pytest.approx(304.8 + 204.8)

    def test_load_bytes_tracks_queue(self):
        env = Environment()
        buf = VCBuffer(capacity_bytes=512, n_vcs=1)
        sw = Switch(env, sid=0, latency_ns=1.0)
        port = OutputPort(env, 25.0, 10.0)
        port.connect_switch(sw, buf)
        buf.reserve(0, 512)  # block the port
        for pid in range(3):
            port.enqueue(Packet(pid, 0, 1, size_bytes=512), 0.0)
        assert port.load_bytes == 3 * 512

    def test_deliver_without_host_raises(self):
        env = Environment()
        port = OutputPort(env, 25.0, 10.0)
        with pytest.raises(ConfigurationError):
            port._deliver(Packet(0, 0, 1))

    def test_switch_without_routing_raises(self):
        env = Environment()
        sw = Switch(env, sid=0)
        sw.add_port(25.0, 10.0)
        sw.on_head_arrival(Packet(0, 0, 1), VCBuffer())
        with pytest.raises(ConfigurationError):
            env.run()

    def test_host_inject_records_time(self):
        env = Environment()
        host = Host(env, hid=0)
        sw = Switch(env, sid=0, latency_ns=1.0)
        host.attach(sw, VCBuffer())
        p = Packet(0, 0, 1)
        host.inject(p, 5.0)
        assert p.inject_time == 5.0
