"""Fast-path/slow-path identity and perf-harness smoke tests.

The hot-path work (DESIGN.md section 10) split Baldur's arbitration into
an allocation-free fast path and an instrumented slow path (taken when
test mode, degraded mode, or metrics are active), and split the kernel's
event sources into a heap plus a sorted batch list.  None of that may
change simulation *results*: these tests pin the optimized paths
byte-identical -- same ``StatsSummary`` including the per-packet latency
digest -- to the instrumented ones on a contended cell, and smoke-test
the ``repro-bench perf`` harness itself.
"""

import json

import pytest

from repro.analysis.experiments import run_open_loop
from repro.analysis.perf import (
    bench_fig6_baldur,
    bench_kernel,
    compare_reports,
    format_comparison,
    format_report,
    run_perf_suite,
    write_report,
)
from repro.netsim.stats import StatsSummary
from repro.obs import MetricsRegistry, Tracer

# Small but contended: random permutation at load 0.9 on 64 nodes
# exercises arbitration ties, drops, retransmissions, and ACK traffic in
# under a second.
CELL = dict(
    n_nodes=64, pattern="random_permutation", load=0.9, packets_per_node=10
)


def _summary(tracer=None, metrics=None) -> dict:
    stats = run_open_loop(
        "baldur", CELL["n_nodes"], CELL["pattern"], CELL["load"],
        CELL["packets_per_node"], seed=3, tracer=tracer, metrics=metrics,
    )
    return StatsSummary.from_stats(stats).to_dict()


class TestFastSlowPathIdentity:
    def test_metrics_slow_path_is_byte_identical(self):
        """Attaching metrics forces the list-building arbitration path;
        results (including the latency digest) must not move."""
        fast = _summary()
        slow = _summary(metrics=MetricsRegistry(window_ns=1000.0))
        assert fast == slow

    def test_tracer_keeps_fast_path_and_results(self):
        fast = _summary()
        traced = _summary(tracer=Tracer(capacity=100_000))
        assert fast == traced

    def test_fully_instrumented_run_is_byte_identical(self):
        fast = _summary()
        instrumented = _summary(
            tracer=Tracer(capacity=100_000),
            metrics=MetricsRegistry(window_ns=1000.0),
        )
        assert fast == instrumented
        # The cell must actually exercise the contended paths, or the
        # assertions above prove nothing.
        assert instrumented["drops"] + instrumented["ack_drops"] > 0
        assert instrumented["retransmissions"] > 0


class TestPerfHarness:
    def test_quick_suite_shape(self):
        report = run_perf_suite(quick=True, networks=("baldur",))
        assert report["quick"] is True
        assert report["schema"] == 1
        assert report["kernel"]["dispatch_events_per_s"] > 0
        assert report["simulators"]["baldur"]["packets_per_s"] > 0
        assert report["fig6_baldur"]["delivered"] > 0

    def test_bench_kernel_counts_events(self):
        result = bench_kernel(2_000)
        assert result["n_events"] == 2_000
        assert result["schedule_ops_per_s"] > 0
        assert result["process_events_per_s"] > 0

    def test_bench_fig6_runs_the_sweep(self):
        result = bench_fig6_baldur(
            n_nodes=16, packets_per_node=4, loads=(0.7,),
            patterns=("transpose",),
        )
        assert result["cells"] == 1
        assert result["delivered"] > 0

    def test_write_report_round_trips(self, tmp_path):
        report = run_perf_suite(quick=True, networks=("ideal",))
        out = tmp_path / "BENCH_perf.json"
        write_report(report, str(out))
        loaded = json.loads(out.read_text())
        assert loaded["quick"] is True
        assert "ideal" in loaded["simulators"]
        assert format_report(loaded)  # renders without error

    def test_compare_reports_flags_regressions(self):
        report = run_perf_suite(quick=True, networks=("ideal",))
        slower = json.loads(json.dumps(report, allow_nan=False))
        slower["kernel"]["dispatch_events_per_s"] *= 0.5
        rows = compare_reports(report, slower)
        by_metric = {r["metric"]: r for r in rows}
        assert by_metric["kernel.dispatch_events_per_s"]["speedup"] == (
            pytest.approx(2.0)
        )
        assert not by_metric["kernel.dispatch_events_per_s"]["regression"]
        # And the reverse direction is a regression.
        rows = compare_reports(slower, report)
        by_metric = {r["metric"]: r for r in rows}
        assert by_metric["kernel.dispatch_events_per_s"]["regression"]
        assert format_comparison(rows)  # renders without error

    def test_compare_refuses_quick_vs_full_mismatch(self):
        quick = {"quick": True, "kernel": {}, "fig6_baldur": {}}
        full = {"quick": False, "kernel": {}, "fig6_baldur": {}}
        with pytest.raises(ValueError):
            compare_reports(quick, full)
