"""The sharded multi-kernel engine (``repro.shard``, DESIGN.md sec. 14).

Contract under test:

* **equivalence** -- on uncontended cells (no drops, no retransmissions)
  a sharded run delivers exactly the single-kernel packets: same
  conservation ledger, same latency multiset;
* **determinism** -- repeated sharded runs are bit-identical, the inline
  and process backends are bit-identical to each other, and the result
  is independent of IPC arrival order by construction;
* **conservation** -- ``audit()`` holds globally even under contention,
  where per-shard RNG streams legitimately change drop/retransmission
  outcomes relative to the single kernel;
* **refusal** -- configurations the conservative-lookahead protocol
  cannot honor (zero-lookahead electrical fabrics, attached
  observability, closed-loop hooks) raise ``ShardingUnsupportedError``
  instead of silently diverging.
"""

import pytest

from repro.analysis.experiments import build_network
from repro.errors import ConfigurationError, ShardingUnsupportedError
from repro.shard import run_sharded, shard_stream_seed
from repro.sim.rand import derive_seed
from repro.traffic import inject_open_loop, transpose


def _cell(network, n_nodes=16, load=0.2, packets_per_node=3, seed=5):
    net = build_network(network, n_nodes, seed)
    inject_open_loop(
        net, transpose(n_nodes), load, packets_per_node, seed=seed
    )
    return net


SHARDABLE = ("baldur", "ideal", "rotor")
ELECTRICAL = ("multibutterfly", "dragonfly", "fattree")


class TestEquivalence:
    """Uncontended cells: sharded == single-kernel, packet for packet."""

    @pytest.mark.parametrize("network", SHARDABLE)
    def test_matches_single_kernel(self, network):
        ref = _cell(network).run()
        stats = _cell(network).run(shards=3)
        assert stats.conservation() == ref.conservation()
        assert sorted(stats.latencies) == sorted(ref.latencies)

    @pytest.mark.parametrize("network", SHARDABLE)
    def test_two_shards_match_four(self, network):
        two = _cell(network).run(shards=2)
        four = _cell(network).run(shards=4)
        assert sorted(two.latencies) == sorted(four.latencies)


class TestDeterminism:
    def test_contended_runs_identical(self):
        # Heavy transpose load: drops, BEB retransmissions, and ACKs all
        # cross shard boundaries; the two runs must still be identical.
        kwargs = dict(n_nodes=32, load=0.7, packets_per_node=10, seed=3)
        a = _cell("baldur", **kwargs).run(shards=4)
        b = _cell("baldur", **kwargs).run(shards=4)
        assert a.latencies == b.latencies
        assert a.conservation() == b.conservation()
        assert a.retransmissions == b.retransmissions

    def test_inline_and_process_backends_identical(self):
        kwargs = dict(n_nodes=32, load=0.7, packets_per_node=10, seed=3)
        inline = run_sharded(_cell("baldur", **kwargs), 4,
                             backend="inline")
        proc = run_sharded(_cell("baldur", **kwargs), 4,
                           backend="process")
        assert inline.latencies == proc.latencies
        assert inline.conservation() == proc.conservation()

    def test_shard_latency_widens_lookahead_deterministically(self):
        kwargs = dict(n_nodes=32, load=0.7, packets_per_node=10, seed=3)
        a = _cell("baldur", **kwargs).run(shards=4, shard_latency_ns=100.0)
        b = _cell("baldur", **kwargs).run(shards=4, shard_latency_ns=100.0)
        assert a.latencies == b.latencies
        # The extra inter-cabinet fiber is real simulated delay.
        zero = _cell("baldur", **kwargs).run(shards=4)
        assert min(a.latencies) > min(zero.latencies)

    def test_rng_stream_contract(self):
        # Documented contract: shard i draws from derive_seed(root,
        # "shard:i"), nothing else.
        assert shard_stream_seed(7, 2) == derive_seed(7, "shard:2")
        assert shard_stream_seed(7, 2) != shard_stream_seed(7, 3)
        assert shard_stream_seed(7, 2) != shard_stream_seed(8, 2)


class TestConservation:
    def test_audit_holds_under_contention(self):
        net = _cell("baldur", n_nodes=32, load=0.9, packets_per_node=10,
                    seed=1)
        stats = net.run(shards=4)
        ledger = net.audit()
        assert ledger["balance"] + ledger.get("conflict_corrections", 0) == 0
        assert stats.injected == ledger["injected"] > 0

    def test_unsharded_audit_unchanged(self):
        net = _cell("baldur")
        net.run()
        ledger = net.audit()
        assert "conflict_corrections" not in ledger
        assert ledger["balance"] == 0


class TestRefusal:
    @pytest.mark.parametrize("network", ELECTRICAL)
    def test_electrical_fabrics_refuse(self, network):
        net = _cell(network)
        with pytest.raises(ShardingUnsupportedError,
                           match="flow-control credits"):
            net.run(shards=2)

    @pytest.mark.parametrize("network", ELECTRICAL)
    def test_electrical_plans_still_introspect(self, network):
        # The partition itself is well-formed; only execution is vetoed.
        plan = build_network(network, 16, 0).shard_plan(2)
        plan.validate()
        assert plan.lookahead_ns > 0

    def test_attached_tracer_refuses(self):
        from repro.obs import Tracer

        net = _cell("baldur")
        net.attach_tracer(Tracer())
        with pytest.raises(ShardingUnsupportedError):
            net.run(shards=2)

    def test_receive_hook_refuses(self):
        net = _cell("baldur")
        net.receive_hook = lambda packet, time: None
        with pytest.raises(ShardingUnsupportedError):
            net.run(shards=2)

    def test_started_clock_refuses(self):
        net = _cell("baldur")
        net.run(until=50.0)
        with pytest.raises(ShardingUnsupportedError):
            net.run(shards=2)

    def test_shards_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            _cell("baldur").run(shards=0)

    def test_masked_switch_refuses(self):
        net = _cell("baldur")
        net.mask_switch(1, 0)
        with pytest.raises(ShardingUnsupportedError):
            net.run(shards=2)


class TestRunnerIntegration:
    def test_workload_kind_rejects_shards(self):
        from repro.runner.jobs import execute_job

        with pytest.raises(ConfigurationError, match="closed-loop"):
            execute_job("workload", {
                "workload": "hotspot", "network": "baldur", "n_nodes": 16,
                "packets_per_node": 4, "seed": 0, "until": 1e6,
                "ping_pong_rounds": 2, "shards": 2,
            })

    def test_resilience_kind_rejects_shards(self):
        from repro.runner.jobs import execute_job

        with pytest.raises(ConfigurationError, match="faults"):
            execute_job("resilience", {
                "network": "baldur", "n_nodes": 16, "k": 1, "load": 0.3,
                "packets_per_node": 4, "seed": 0, "until": 1e6,
                "shards": 2,
            })

    def test_cli_rejects_shards_on_closed_loop_commands(self, capsys):
        from repro.cli import main

        assert main(["fig7", "--nodes", "16", "--shards", "2"]) == 2
        assert "--shards is not supported" in capsys.readouterr().err

    def test_open_loop_spec_threads_shards(self):
        from repro.analysis.experiments import zoo_spec
        from repro.runner import run_sweep

        def sweep_with(**kw):
            spec = zoo_spec(n_nodes=16, loads=(0.2,), packets_per_node=3,
                            networks=("baldur",), seed=5, **kw)
            sweep = run_sweep(spec, jobs=1, use_cache=False)
            assert sweep.ok
            return sweep.outcomes[0].result

        # Uncontended cell: the sharded sweep result equals the plain one
        # (the spec key differs, but the simulated physics do not).
        sharded = sweep_with(shards=3)
        plain = sweep_with()
        assert sharded["delivered"] == plain["delivered"] > 0
        assert sharded["avg_latency_ns"] == plain["avg_latency_ns"]

    def test_default_specs_unchanged_without_shards(self):
        from repro.analysis.experiments import (
            figure6_spec,
            table5_spec,
            zoo_spec,
        )

        for spec in (figure6_spec(), table5_spec(), zoo_spec()):
            assert "shards" not in spec.fixed
            assert "shard_latency_ns" not in spec.fixed
