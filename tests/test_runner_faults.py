"""Fault-tolerant sweep execution: timeouts, retries, crash recovery,
checkpoint/resume.

Every test drives the real engine with an injected
:class:`~repro.runner.WorkerFaultPlan` (scripted worker crashes, hangs,
failures, corrupt results) and asserts the headline guarantee of
DESIGN.md section 12: a faulty run that recovers produces ``to_json``
output *byte-identical* to an undisturbed serial run.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.analysis.experiments import figure6_spec
from repro.errors import ConfigurationError, SweepExecutionError
from repro.obs import artifacts as obs_artifacts
from repro.runner import (
    FaultPolicy,
    InjectedWorkerFault,
    SweepJournal,
    WorkerFaultPlan,
    run_sweep,
)

SPEC_KWARGS = dict(
    n_nodes=16,
    loads=(0.3, 0.7),
    patterns=("transpose",),
    packets_per_node=3,
    networks=("baldur", "ideal"),
    seed=0,
)

RECORD = FaultPolicy(on_error="record", backoff_base_s=0.0)


def small_spec(**overrides):
    kwargs = {**SPEC_KWARGS, **overrides}
    return figure6_spec(**kwargs)


def job_keys(spec):
    return [job.key for job in spec.expand()]


@pytest.fixture(scope="module")
def clean_json():
    """to_json of an undisturbed serial run -- the byte-identity oracle."""
    return run_sweep(small_spec(), jobs=1).to_json()


class TestFaultPolicy:
    def test_defaults_are_backward_compatible(self):
        policy = FaultPolicy()
        assert policy.on_error == "raise"
        assert policy.max_attempts == 1
        assert policy.job_timeout_s is None
        assert policy.deadline_s is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(on_error="ignore"),
            dict(max_attempts=0),
            dict(crash_retries=-1),
            dict(max_pool_rebuilds=-1),
            dict(job_timeout_s=0.0),
            dict(deadline_s=-5.0),
            dict(backoff_base_s=-0.1),
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultPolicy(**kwargs)

    def test_backoff_is_deterministic_and_bounded(self):
        policy = FaultPolicy(backoff_base_s=0.1, backoff_cap_s=1.0)
        for attempt in (2, 3, 4, 9):
            a = policy.backoff_s("open_loop/load=0.3", attempt)
            b = policy.backoff_s("open_loop/load=0.3", attempt)
            assert a == b  # pure function of (key, attempt)
            nominal = min(1.0, 0.1 * 2.0 ** (attempt - 2))
            assert 0.5 * nominal <= a < nominal

    def test_backoff_varies_by_key(self):
        policy = FaultPolicy(backoff_base_s=0.1)
        delays = {policy.backoff_s(f"job-{n}", 2) for n in range(16)}
        assert len(delays) > 1  # jitter actually spreads retries out

    def test_zero_base_means_immediate_retry(self):
        assert RECORD.backoff_s("any", 2) == 0.0


class TestRetryAndQuarantine:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_transient_failures_retry_to_identical_results(
        self, jobs, clean_json
    ):
        spec = small_spec()
        victim = job_keys(spec)[0]
        plan = WorkerFaultPlan(actions={victim: ("fail", "fail")})
        sweep = run_sweep(
            spec, jobs=jobs,
            policy=FaultPolicy(max_attempts=3, backoff_base_s=0.0),
            fault_plan=plan,
        )
        assert sweep.ok
        assert sweep.report.retries == 2
        assert sweep.to_json() == clean_json

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_poison_job_quarantined_others_kept(self, jobs):
        spec = small_spec()
        keys = job_keys(spec)
        plan = WorkerFaultPlan(actions={keys[0]: ("fail",) * 5})
        sweep = run_sweep(
            spec, jobs=jobs,
            policy=FaultPolicy(max_attempts=3, backoff_base_s=0.0,
                               on_error="record"),
            fault_plan=plan,
        )
        assert not sweep.ok
        statuses = {o.job.key: o.status for o in sweep.outcomes}
        assert statuses[keys[0]] == "quarantined"
        assert all(statuses[key] == "ok" for key in keys[1:])
        (bad,) = sweep.failures()
        assert bad.attempts == 3
        assert bad.error["type"] == "InjectedWorkerFault"
        assert "injected failure" in bad.error["message"]
        assert sweep.report.quarantined == 1

    def test_single_attempt_failure_is_failed_not_quarantined(self):
        spec = small_spec()
        victim = job_keys(spec)[0]
        plan = WorkerFaultPlan(actions={victim: ("fail",)})
        sweep = run_sweep(spec, jobs=1, policy=RECORD, fault_plan=plan)
        (bad,) = sweep.failures()
        assert bad.status == "failed"
        assert sweep.report.failed == 1

    def test_raise_mode_propagates_the_job_exception(self):
        spec = small_spec()
        victim = job_keys(spec)[0]
        plan = WorkerFaultPlan(actions={victim: ("fail",)})
        with pytest.raises(InjectedWorkerFault):
            run_sweep(spec, jobs=1, fault_plan=plan)

    def test_corrupt_result_consumes_an_attempt(self, clean_json):
        spec = small_spec()
        victim = job_keys(spec)[1]
        plan = WorkerFaultPlan(actions={victim: ("corrupt",)})
        sweep = run_sweep(
            spec, jobs=1,
            policy=FaultPolicy(max_attempts=2, backoff_base_s=0.0,
                               on_error="record"),
            fault_plan=plan,
        )
        assert sweep.ok  # the retry ran the job normally
        assert sweep.report.retries == 1
        assert sweep.to_json() == clean_json

    def test_corrupt_result_without_retry_budget_fails(self):
        spec = small_spec()
        victim = job_keys(spec)[1]
        plan = WorkerFaultPlan(actions={victim: ("corrupt",)})
        sweep = run_sweep(spec, jobs=1, policy=RECORD, fault_plan=plan)
        (bad,) = sweep.failures()
        assert bad.status == "failed"
        assert "not a result dict" in bad.error["message"]

    def test_unknown_fault_action_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerFaultPlan(actions={"k": ("explode",)})


class TestCrashRecovery:
    def test_worker_crash_rebuilds_pool_and_recovers(self, clean_json):
        spec = small_spec()
        victim = job_keys(spec)[2]
        plan = WorkerFaultPlan(actions={victim: ("crash",)})
        sweep = run_sweep(spec, jobs=2, policy=RECORD, fault_plan=plan)
        assert sweep.ok
        assert sweep.report.worker_crashes >= 1
        assert sweep.report.pool_rebuilds >= 1
        assert sweep.to_json() == clean_json

    def test_repeatedly_crashing_job_is_quarantined(self):
        spec = small_spec()
        keys = job_keys(spec)
        plan = WorkerFaultPlan(actions={keys[0]: ("crash",) * 8})
        sweep = run_sweep(
            spec, jobs=2,
            policy=FaultPolicy(on_error="record", crash_retries=2,
                               backoff_base_s=0.0),
            fault_plan=plan,
        )
        statuses = {o.job.key: o.status for o in sweep.outcomes}
        assert statuses[keys[0]] == "quarantined"
        # Innocent bystanders re-dispatched and completed.
        assert all(statuses[key] == "ok" for key in keys[1:])
        assert sweep.report.pool_rebuilds >= 3


class TestTimeouts:
    def test_hung_job_cancelled_within_budget_others_kept(self):
        spec = small_spec()
        keys = job_keys(spec)
        plan = WorkerFaultPlan(actions={keys[1]: ("hang",)}, hang_s=60.0)
        start = time.monotonic()
        sweep = run_sweep(
            spec, jobs=2,
            policy=FaultPolicy(job_timeout_s=0.5, on_error="record",
                               backoff_base_s=0.0),
            fault_plan=plan,
        )
        wall = time.monotonic() - start
        assert wall < 30.0  # cancelled, not joined for hang_s
        statuses = {o.job.key: o.status for o in sweep.outcomes}
        assert statuses[keys[1]] == "timeout"
        assert all(statuses[k] == "ok" for k in keys if k != keys[1])
        (bad,) = sweep.failures()
        assert bad.error["type"] == "JobTimeout"
        assert bad.elapsed_s >= 0.5
        assert sweep.report.timeouts == 1

    def test_sweep_deadline_fails_pending_jobs(self):
        spec = small_spec()
        keys = job_keys(spec)
        plan = WorkerFaultPlan(
            actions={key: ("hang",) for key in keys}, hang_s=60.0
        )
        sweep = run_sweep(
            spec, jobs=2,
            policy=FaultPolicy(deadline_s=0.5, on_error="record",
                               backoff_base_s=0.0),
            fault_plan=plan,
        )
        assert not sweep.ok
        statuses = {o.status for o in sweep.outcomes}
        # In-flight jobs time out; never-started jobs fail outright.
        assert statuses <= {"timeout", "failed"}
        assert "timeout" in statuses
        errors = {o.error["type"] for o in sweep.failures()}
        assert errors == {"Deadline"}


class TestCheckpointResume:
    def test_resume_skips_journaled_jobs_byte_identically(
        self, tmp_path, clean_json
    ):
        spec = small_spec()
        journal_path = tmp_path / "sweep.journal.jsonl"
        keys = job_keys(spec)
        # First run is interrupted after job 0 by a poison job: only the
        # completed cells land in the journal.
        plan = WorkerFaultPlan(actions={keys[1]: ("fail",)})
        partial = run_sweep(spec, jobs=1, policy=RECORD, fault_plan=plan,
                            resume=journal_path)
        obs_artifacts.register(
            "sweep-journal", SweepJournal(journal_path, spec)
        )
        assert not partial.ok
        resumed = run_sweep(spec, jobs=1, resume=journal_path)
        assert resumed.ok
        assert resumed.report.resumed == 3
        assert resumed.report.executed == 1
        assert resumed.to_json() == clean_json

    def test_sigkilled_run_resumes_byte_identically(
        self, tmp_path, clean_json
    ):
        """Acceptance: SIGKILL a sweep mid-flight, resume, compare bytes."""
        journal_path = tmp_path / "killed.journal.jsonl"
        script = textwrap.dedent(
            """
            import os, signal
            from repro.analysis.experiments import figure6_spec
            from repro.runner import run_sweep

            spec = figure6_spec(
                n_nodes=16, loads=(0.3, 0.7), patterns=("transpose",),
                packets_per_node=3, networks=("baldur", "ideal"), seed=0,
            )
            done = []

            def kill_after_two(event):
                if "event" in event:
                    return
                done.append(event["key"])
                if len(done) == 2:
                    os.kill(os.getpid(), signal.SIGKILL)

            run_sweep(spec, jobs=1, resume={path!r},
                      progress=kill_after_two)
            raise SystemExit("sweep survived the injected SIGKILL")
            """
        ).format(path=str(journal_path))
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env={**os.environ, "PYTHONPATH": str(_src_dir())},
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        # The journal survived the kill: header plus the completed jobs.
        lines = journal_path.read_text().splitlines()
        assert len(lines) == 3
        obs_artifacts.register(
            "killed-journal", SweepJournal(journal_path, small_spec())
        )
        resumed = run_sweep(small_spec(), jobs=1, resume=journal_path)
        assert resumed.ok
        assert resumed.report.resumed == 2
        assert resumed.report.executed == 2
        assert resumed.to_json() == clean_json

    def test_torn_journal_tail_is_tolerated(self, tmp_path, clean_json):
        spec = small_spec()
        journal_path = tmp_path / "torn.journal.jsonl"
        run_sweep(spec, jobs=1, resume=journal_path)
        with open(journal_path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "open_loop/truncated-by-')  # torn write
        resumed = run_sweep(spec, jobs=1, resume=journal_path)
        assert resumed.report.resumed == 4
        assert resumed.to_json() == clean_json

    def test_stale_journal_from_other_spec_is_ignored(self, tmp_path):
        journal_path = tmp_path / "stale.journal.jsonl"
        run_sweep(small_spec(), jobs=1, resume=journal_path)
        other = small_spec(seed=7)
        sweep = run_sweep(other, jobs=1, resume=journal_path)
        assert sweep.report.resumed == 0
        assert sweep.report.executed == 4
        # ... and the journal was rewritten for the new spec.
        rerun = run_sweep(other, jobs=1, resume=journal_path)
        assert rerun.report.resumed == 4

    def test_journal_exports_as_jsonl_artifact(self, tmp_path):
        spec = small_spec(loads=(0.3,))
        journal_path = tmp_path / "export.journal.jsonl"
        run_sweep(spec, jobs=1, resume=journal_path)
        journal = SweepJournal(journal_path, spec)
        target = tmp_path / "artifact.jsonl"
        n = journal.to_jsonl(target)
        assert n == len(target.read_text().splitlines())
        for line in target.read_text().splitlines():
            json.loads(line)  # every exported line is intact JSON


class TestPartialResultsSurface:
    def test_to_json_carries_failure_payloads(self):
        spec = small_spec()
        keys = job_keys(spec)
        plan = WorkerFaultPlan(actions={keys[0]: ("fail",)})
        sweep = run_sweep(spec, jobs=1, policy=RECORD, fault_plan=plan)
        doc = json.loads(sweep.to_json())
        by_key = {entry["key"]: entry for entry in doc["jobs"]}
        bad = by_key[keys[0]]
        assert set(bad) == {"key", "status", "error"}
        assert bad["status"] == "failed"
        assert bad["error"]["type"] == "InjectedWorkerFault"
        for key in keys[1:]:
            assert set(by_key[key]) == {"key", "result"}

    def test_reshapers_skip_failed_cells(self):
        from repro.analysis.experiments import (
            figure7_ratios,
            reshape_figure6,
        )

        spec = small_spec()
        keys = job_keys(spec)
        plan = WorkerFaultPlan(actions={keys[0]: ("fail",)})
        sweep = run_sweep(spec, jobs=1, policy=RECORD, fault_plan=plan)
        grids = reshape_figure6(sweep)
        flat = {
            (pattern, network, load)
            for pattern, per_net in grids.items()
            for network, per_load in per_net.items()
            for load in per_load
        }
        assert len(flat) == 3  # 4 cells minus the failed one
        # figure7_ratios tolerates cells that are absent entirely, the
        # shape a partial sweep reshapes into.
        some_pattern = next(iter(grids))
        some_network = next(iter(grids[some_pattern]))
        some_load = next(iter(grids[some_pattern][some_network]))
        summary = grids[some_pattern][some_network][some_load]
        results = {"w": {"baldur": summary}}
        with pytest.warns(RuntimeWarning, match="skipping cell"):
            ratios = figure7_ratios(results,
                                    networks=("baldur", "ideal"))
        assert ratios == {"w": {"baldur": 1.0}}

    def test_describe_mentions_fault_counts(self):
        spec = small_spec()
        keys = job_keys(spec)
        plan = WorkerFaultPlan(actions={keys[0]: ("fail", "fail")})
        sweep = run_sweep(
            spec, jobs=1,
            policy=FaultPolicy(max_attempts=2, backoff_base_s=0.0,
                               on_error="record"),
            fault_plan=plan,
        )
        text = sweep.report.describe()
        assert "1 quarantined" in text
        assert "1 retries" in text

    def test_raise_mode_deadline_aborts_with_sweep_error(self):
        spec = small_spec()
        plan = WorkerFaultPlan(
            actions={key: ("hang",) for key in job_keys(spec)},
            hang_s=60.0,
        )
        with pytest.raises(SweepExecutionError):
            run_sweep(
                spec, jobs=2,
                policy=FaultPolicy(deadline_s=0.5, backoff_base_s=0.0),
                fault_plan=plan,
            )


def _src_dir():
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
