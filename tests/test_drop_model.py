"""Tests for the worst-case one-shot drop model (Sec. IV-E)."""

import numpy as np
import pytest

from repro import constants as C
from repro.core import (
    drop_rate_table,
    multiplicity_for_scale,
    one_shot_drop_rate,
    required_multiplicity,
)
from repro.errors import ConfigurationError, TopologyError


class TestOneShotDropRate:
    def test_monotone_in_multiplicity(self):
        rates = [
            one_shot_drop_rate(256, m, "random_permutation", trials=2)
            for m in (1, 2, 3, 4)
        ]
        assert rates == sorted(rates, reverse=True)
        assert rates[0] > 0.5  # m=1 drops most packets

    def test_m4_low_at_1k(self):
        # Paper: m=4 targets <1% at 1,024 nodes; our tool lands at ~1.3%
        # (documented boundary difference in EXPERIMENTS.md).
        rate = one_shot_drop_rate(1024, 4, "random_permutation", trials=3)
        assert rate < 0.02

    def test_m5_below_1pct_at_64k(self):
        # Large-scale check (64K as a fast stand-in for the 1M result;
        # the full 1M case runs in the Sec. IV-E bench).
        rate = one_shot_drop_rate(2**16, 5, "random_permutation", trials=1)
        assert rate < C.TARGET_DROP_RATE

    def test_patterns_all_work(self):
        for pattern in ("random_permutation", "transpose", "bisection"):
            rate = one_shot_drop_rate(64, 3, pattern, trials=1)
            assert 0.0 <= rate <= 1.0

    def test_explicit_destinations(self):
        n = 64
        dst = np.roll(np.arange(n), 1)
        rate = one_shot_drop_rate(n, 2, destinations=dst, trials=2)
        assert 0.0 <= rate <= 1.0

    def test_destination_shape_validated(self):
        with pytest.raises(ConfigurationError):
            one_shot_drop_rate(64, 2, destinations=np.arange(10))

    def test_unknown_pattern(self):
        with pytest.raises(ConfigurationError):
            one_shot_drop_rate(64, 2, pattern="nope")

    def test_invalid_nodes(self):
        with pytest.raises(TopologyError):
            one_shot_drop_rate(100, 2)

    def test_invalid_multiplicity(self):
        with pytest.raises(ConfigurationError):
            one_shot_drop_rate(64, 0)

    def test_deterministic(self):
        a = one_shot_drop_rate(256, 2, seed=5, trials=2)
        b = one_shot_drop_rate(256, 2, seed=5, trials=2)
        assert a == b

    def test_zero_drops_with_huge_multiplicity(self):
        assert one_shot_drop_rate(64, 8, trials=1) == 0.0

    def test_hotspot_like_traffic_drops_heavily(self):
        # All nodes to one destination: the final stages can carry at most
        # m packets, so drops approach 100% regardless of randomization.
        n = 64
        dst = np.full(n, 7)
        dst[7] = 8
        rate = one_shot_drop_rate(n, 3, destinations=dst, trials=1)
        assert rate > 0.8


class TestMultiplicitySelection:
    def test_required_multiplicity_monotone_target(self):
        strict = required_multiplicity(256, target_drop_rate=0.001, trials=2)
        loose = required_multiplicity(256, target_drop_rate=0.2, trials=2)
        assert strict >= loose

    def test_required_multiplicity_reasonable_at_1k(self):
        m = required_multiplicity(
            1024, patterns=["random_permutation"], trials=2
        )
        assert m in (4, 5)  # paper: 4; our tool sits at the boundary

    def test_target_validation(self):
        with pytest.raises(ConfigurationError):
            required_multiplicity(64, target_drop_rate=0.0)

    def test_published_scale_rule(self):
        assert multiplicity_for_scale(32) == 3
        assert multiplicity_for_scale(1024) == 4
        assert multiplicity_for_scale(2**20) == 5

    def test_drop_rate_table_shape(self):
        table = drop_rate_table(256, multiplicities=(1, 2, 3), trials=1)
        assert set(table) == {1, 2, 3}
        assert table[1] > table[3]
