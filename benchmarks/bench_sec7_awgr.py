"""Sec. VII: quantitative comparison against an AWGR network at 32 nodes.

Paper reference: Baldur consumes 0.7 W per node (multiplicity 3, TL chip
power) vs. 4.2 W per node for the AWGR network (receivers, SerDes, header
buffers, tunable wavelength converters), and avoids the 90 ns electrical
header-processing latency.
"""

from conftest import emit

from repro.analysis.tables import format_table
from repro.power.awgr import awgr_comparison


def test_sec7_awgr_comparison(benchmark):
    report = benchmark(awgr_comparison, 32)
    rows = [
        ["Baldur W/node", report["paper_baldur_w"],
         report["baldur_w_per_node"]],
        ["AWGR W/node", report["paper_awgr_w"], report["awgr_w_per_node"]],
        ["AWGR/Baldur power", 6.0, report["awgr_over_baldur"]],
        ["Baldur switch latency (ns)", 0.94,
         report["baldur_switch_latency_ns"]],
        ["AWGR header latency (ns)", 90.0,
         report["awgr_header_latency_ns"]],
    ]
    emit(
        "Sec. VII -- Baldur vs AWGR at 32 nodes (paper vs measured)",
        format_table(["metric", "paper", "measured"], rows),
    )
    assert report["awgr_over_baldur"] > 4.0
    assert report["baldur_switch_latency_ns"] < 2.0
