"""Ablation: the retransmission/backoff machinery (Sec. IV-E) and the
Sec. VIII traffic-combining extension.

* With retransmission on, delivery is 100% despite drops; the measured
  peak retransmission-buffer occupancy stays far below the provisioned
  1 MB (the paper measured 536 KB sufficient at load 0.7).
* ACK coalescing (one ACK covering a burst) reduces ACK traffic without
  hurting delivery.
"""

from conftest import emit

from repro.analysis.tables import format_table
from repro.core import BaldurNetwork
from repro.traffic import inject_open_loop, random_permutation


def _run(n_nodes, packets, coalescing):
    net = BaldurNetwork(
        n_nodes,
        multiplicity=3,
        seed=1,
        ack_coalescing=coalescing,
        ack_coalesce_window_ns=500.0,
    )
    inject_open_loop(
        net, random_permutation(n_nodes, 1), 0.7, packets, seed=1
    )
    stats = net.run(until=100_000_000)
    return net, stats


def test_ablation_retransmission_and_coalescing(
    benchmark, bench_nodes, bench_packets
):
    (plain_net, plain), __ = benchmark.pedantic(
        lambda: (_run(bench_nodes, bench_packets, False), None),
        rounds=1,
        iterations=1,
    )
    combined_net, combined = _run(bench_nodes, bench_packets, True)
    rows = [
        ["delivery ratio", plain.delivery_ratio, combined.delivery_ratio],
        ["acks sent", plain_net.acks_sent, combined_net.acks_sent],
        ["avg latency (ns)", plain.average_latency,
         combined.average_latency],
        ["peak retx buffer (KB)", plain_net.peak_retx_buffer_kb,
         combined_net.peak_retx_buffer_kb],
    ]
    emit(
        f"Ablation -- retransmission + ACK coalescing "
        f"({bench_nodes} nodes, load 0.7)",
        format_table(["metric", "per-packet acks", "coalesced"], rows),
    )
    assert plain.delivery_ratio == 1.0
    assert combined.delivery_ratio == 1.0
    assert combined_net.acks_sent <= plain_net.acks_sent
    # Sec. IV-E: 1 MB provisioned with abundant margin.
    assert plain_net.peak_retx_buffer_kb < 1024
