"""Sec. IV-E: worst-case drop model and multiplicity selection.

Paper reference: with one packet per node injected simultaneously,
multiplicity 4 is required for a 1,024-node network and multiplicity 5 is
sufficient for networks with over one million nodes (<1% drop rate).
"""

from conftest import emit

from repro.analysis.tables import format_table
from repro.core.drop_model import one_shot_drop_rate
from repro.core.multiplicity import required_multiplicity


def test_sec4e_one_shot_drop_sweep(benchmark):
    rows = []
    for m in (1, 2, 3, 4, 5):
        rate = one_shot_drop_rate(1024, m, "random_permutation", trials=3)
        rows.append([m, 100 * rate])
    benchmark.pedantic(
        one_shot_drop_rate,
        args=(1024, 4, "random_permutation"),
        kwargs=dict(trials=1),
        rounds=3,
        iterations=1,
    )
    emit(
        "Sec. IV-E -- worst-case one-shot drop rate, 1,024 nodes "
        "(paper: m=4 crosses ~1%)",
        format_table(["multiplicity", "drop_%"], rows),
    )
    assert rows[4][1] < 1.0  # m=5 comfortably under 1%
    assert rows[3][1] < 2.0  # m=4 at the ~1% boundary


def test_sec4e_multiplicity_selection(benchmark, bench_full):
    m_1k = benchmark.pedantic(
        required_multiplicity,
        args=(1024,),
        kwargs=dict(patterns=["random_permutation"], trials=2),
        rounds=1,
        iterations=1,
    )
    lines = [f"required multiplicity @1K: {m_1k} (paper: 4)"]
    if bench_full:
        rate_1m = one_shot_drop_rate(
            2**20, 5, "random_permutation", trials=1
        )
        lines.append(
            f"one-shot drop @1M nodes, m=5: {100 * rate_1m:.2f}% "
            f"(paper: <1%)"
        )
        assert rate_1m < 0.01
    else:
        rate_64k = one_shot_drop_rate(
            2**16, 5, "random_permutation", trials=1
        )
        lines.append(
            f"one-shot drop @64K nodes, m=5: {100 * rate_64k:.2f}% "
            f"(set REPRO_BENCH_FULL=1 for the 1M-node case)"
        )
    emit("Sec. IV-E -- multiplicity selection", "\n".join(lines))
    assert m_1k in (4, 5)
