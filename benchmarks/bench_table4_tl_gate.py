"""Table IV: TL gate characteristics from the device model.

Paper reference (Keysight ADS): area 25 um^2, rise/fall 7.3 ps, delay
1.93 ps, power 0.406 mW, data rate 60 Gbps, 6.77 fJ/bit.
"""

from conftest import emit

from repro.analysis.tables import format_table
from repro.tl.device import TLDeviceParameters, characterize_gate


def test_table4_tl_gate_characteristics(benchmark):
    chars = benchmark(characterize_gate, TLDeviceParameters())
    rows = [
        ["area (um^2)", 25.0, chars.area_um2],
        ["rise/fall (ps)", 7.3, chars.rise_fall_time_ps],
        ["delay (ps)", 1.93, chars.delay_ps],
        ["power (mW)", 0.406, chars.power_mw],
        ["data rate (Gbps)", 60.0, chars.data_rate_gbps],
        ["energy (fJ/bit)", 6.77, chars.energy_per_bit_fj],
    ]
    emit(
        "Table IV -- TL gate device-level results",
        format_table(["metric", "paper", "measured"], rows),
    )
    assert abs(chars.delay_ps - 1.93) < 0.05
    assert abs(chars.power_mw - 0.406) < 0.01
