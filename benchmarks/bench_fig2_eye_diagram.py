"""Fig. 2c: the eye diagram of a TL inverter operating at 60 Gbps.

Paper reference: 'sufficient eye opening that indicates good signal
integrity and reliable operation' at the gate's native 60 Gbps rate.
"""

from conftest import emit

from repro.analysis.tables import format_table
from repro.tl.eye import simulate_eye


def test_fig2c_eye_diagram(benchmark):
    eye = benchmark.pedantic(
        simulate_eye,
        kwargs=dict(data_rate_gbps=60.0, n_bits=256, seed=0),
        rounds=1,
        iterations=1,
    )
    stressed = simulate_eye(data_rate_gbps=120.0, n_bits=256, seed=0)
    rows = [
        ["60 Gbps (Fig. 2c)", eye.vertical_opening,
         eye.horizontal_opening],
        ["120 Gbps (stress)", stressed.vertical_opening,
         stressed.horizontal_opening],
    ]
    emit(
        "Fig. 2c -- TL inverter eye diagram at 60 Gbps",
        eye.render(width=64, height=14)
        + "\n\n"
        + format_table(
            ["rate", "vertical opening", "horizontal opening"], rows
        ),
    )
    assert eye.vertical_opening > 0.5
    assert eye.horizontal_opening > 0.4
    assert stressed.horizontal_opening <= eye.horizontal_opening
