"""Sec. II-A: the motivation numbers for existing networks.

Paper reference: a radix-2 electrical multi-butterfly (m=4) consumes
223.5 W per node at 1,024 nodes -- 6X more than fat-tree -- with 41.7% of
the power in O-E/E-O conversions and SerDes; a 128K-node fat-tree from
80-radix switches consumes 6.4X more power per node than the 1,024-node
radix-16 tree.
"""

from conftest import emit

from repro.analysis.tables import format_table
from repro.power.network_power import fattree_power, multibutterfly_power


def test_sec2_motivation_numbers(benchmark):
    emb = benchmark(multibutterfly_power, 1024)
    ft_1k = fattree_power(1024)
    ft_128k = fattree_power(128_000)
    rows = [
        ["eMB W/node @1K", 223.5, emb.total],
        ["eMB O-E/E-O+SerDes %", 41.7, 100 * emb.oeo_serdes_fraction],
        ["eMB / fat-tree @1K", 6.0, emb.total / ft_1k.total],
        ["fat-tree 128K/1K growth", 6.4, ft_128k.total / ft_1k.total],
        ["fat-tree radix @128K", 80, ft_128k.detail["radix"]],
    ]
    emit(
        "Sec. II-A -- motivation numbers (paper vs measured)",
        format_table(["metric", "paper", "measured"], rows),
    )
    assert abs(emb.total - 223.5) / 223.5 < 0.05
    assert abs(100 * emb.oeo_serdes_fraction - 41.7) < 3.0
    assert ft_128k.detail["radix"] == 80
