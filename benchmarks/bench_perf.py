"""Hot-path throughput benches (the ``repro-bench perf`` suite as tests).

These wrap :mod:`repro.analysis.perf` -- the same harness behind
``repro-bench perf`` / ``BENCH_perf.json`` -- so the kernel and simulator
throughput numbers show up alongside the figure benches.  Wall-clock
throughput is machine-dependent: the assertions here are sanity floors
(orders of magnitude below any real machine), not perf targets; the
committed ``BENCH_perf.json`` at the repo root is the reference
trajectory point.
"""

from conftest import emit

from repro.analysis.perf import (
    bench_fig6_baldur,
    bench_kernel,
    bench_simulator,
    format_report,
    run_perf_suite,
)


def test_kernel_throughput(benchmark):
    result = benchmark.pedantic(
        bench_kernel, args=(100_000,), rounds=1, iterations=1
    )
    emit(
        "perf -- event-kernel throughput (100k events)",
        f"schedule {result['schedule_ops_per_s']:,.0f} ops/s\n"
        f"dispatch {result['dispatch_events_per_s']:,.0f} ev/s\n"
        f"process  {result['process_events_per_s']:,.0f} ev/s",
    )
    assert result["dispatch_events_per_s"] > 10_000
    assert result["schedule_ops_per_s"] > 10_000


def test_baldur_packet_throughput(benchmark, bench_packets):
    result = benchmark.pedantic(
        bench_simulator,
        args=("baldur",),
        kwargs=dict(n_nodes=64, packets_per_node=bench_packets),
        rounds=1,
        iterations=1,
    )
    emit(
        "perf -- baldur simulator throughput",
        f"{result['packets_per_s']:,.0f} pkts/s "
        f"({result['delivered']} delivered in {result['wall_s']:.3f}s)",
    )
    assert result["delivered"] > 0
    assert result["packets_per_s"] > 100


def test_fig6_acceptance_workload(benchmark):
    """The hot-path acceptance workload: Baldur-only Fig. 6 sweep."""
    result = benchmark.pedantic(
        bench_fig6_baldur,
        kwargs=dict(n_nodes=32, packets_per_node=8, loads=(0.7,),
                    patterns=("transpose",)),
        rounds=1,
        iterations=1,
    )
    emit(
        "perf -- fig6 baldur sweep (reduced scale)",
        f"{result['packets_per_s']:,.0f} pkts/s over {result['cells']} "
        f"cells ({result['wall_s']:.3f}s)",
    )
    # Transpose skips self-sends, so delivered < nodes * ppn.
    assert 0 < result["delivered"] <= 32 * 8


def test_quick_suite_end_to_end(benchmark):
    """The full --quick suite runs and formats (what the CI perf job does)."""
    report = benchmark.pedantic(
        run_perf_suite,
        kwargs=dict(quick=True, networks=("baldur", "ideal")),
        rounds=1,
        iterations=1,
    )
    emit("perf -- quick suite report", format_report(report))
    assert report["quick"] is True
    assert set(report["simulators"]) == {"baldur", "ideal"}
    for row in report["simulators"].values():
        assert row["packets_per_s"] > 0
