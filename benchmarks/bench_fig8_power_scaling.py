"""Fig. 8: power per server node vs. network scale.

Paper reference: Baldur's per-node power grows only 1.7X from 1K to 1M
(vs 7.8X dragonfly, 9.0X fat-tree, 2.0X eMB); Baldur is 3.2X-26.4X more
power-efficient at 1K and 14.6X-31.0X at 1M.
"""

from conftest import emit

from repro.analysis.tables import format_table
from repro.power.network_power import FIG8_SCALES, power_scaling_sweep


def test_fig8_power_scaling(benchmark):
    sweep = benchmark(power_scaling_sweep, list(FIG8_SCALES))
    networks = list(sweep)
    rows = []
    for i, scale in enumerate(FIG8_SCALES):
        rows.append(
            [f"{scale:,}"] + [sweep[name][i].total for name in networks]
        )
    growth = [
        sweep[name][-1].total / sweep[name][0].total for name in networks
    ]
    paper_growth = {"baldur": 1.7, "multibutterfly": 2.0,
                    "fattree": 9.0, "dragonfly": 7.8}
    rows.append(["growth 1K->1M"] + growth)
    rows.append(
        ["paper growth"] + [paper_growth[name] for name in networks]
    )
    emit(
        "Fig. 8 -- power per server node (W) vs. scale",
        format_table(["scale"] + networks, rows),
    )
    baldur = sweep["baldur"]
    for name in networks:
        if name != "baldur":
            for i in range(len(FIG8_SCALES)):
                assert sweep[name][i].total > baldur[i].total
    assert growth[networks.index("baldur")] < 2.0
