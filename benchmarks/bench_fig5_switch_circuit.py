"""Fig. 5: gate-level simulation waveform of the 2x2 TL switch.

Paper reference (HSPICE): the routing bit is stored before its falling
edge completes processing; valid and mask-off go high during the first
gap period and stay high to end-of-packet; the first routing bit is
masked off; the packet exits the designated output port.
"""

from conftest import emit

from repro.tl.encoding import decode_packet
from repro.tl.switch_circuit import TLSwitchCircuit

T_PS = 40.0  # 25 Gbps bit period


def run_switch():
    switch = TLSwitchCircuit(bit_period_ps=T_PS)
    switch.inject(0, [0, 1], b"\xa5\x3c")
    switch.run(until_ps=3000)
    return switch


def test_fig5_switch_waveform(benchmark):
    switch = benchmark.pedantic(run_switch, rounds=1, iterations=1)
    det = switch.detectors[0]
    routing_set = det.routing_q.rise_times()[0]
    valid_set = det.valid_q.rise_times()[0]
    out_bits, out_payload = decode_packet(
        switch.outputs[0].waveform(), 1, bit_period=T_PS
    )
    body = "\n".join(
        [
            switch.waveform_report(t_end_ps=1500),
            "",
            f"routing latch set at {routing_set:.1f} ps "
            f"(first-bit falling edge at {2 * T_PS:.0f} ps)",
            f"valid/mask-off set at {valid_set:.1f} ps "
            f"(gap period: {2 * T_PS:.0f}-{3 * T_PS:.0f} ps)",
            f"output packet decoded: routing bits {out_bits}, "
            f"payload {out_payload!r} (first bit masked off)",
            f"structural gate count: {switch.gate_count} "
            f"(paper: ~60 TL gates, Fig. 4)",
        ]
    )
    emit("Fig. 5 -- 2x2 TL switch circuit simulation", body)
    assert out_bits == [1] and out_payload == b"\xa5\x3c"
    assert 2 * T_PS < valid_set < 3 * T_PS
