"""Fig. 10: Baldur deployment cost per server node vs. scale.

Paper reference: 523 USD per node at the 1K-2K scale (vs 1,992 USD for a
2,560-node fat-tree); cost grows only modestly with scale and is
dominated by the optical interposers.
"""

from conftest import emit

from repro import constants as C
from repro.analysis.tables import format_table
from repro.cost.model import baldur_cost

SCALES = (1024, 4096, 16384, 65536, 262144, 1048576)


def test_fig10_cost_per_node(benchmark):
    breakdowns = [baldur_cost(n) for n in SCALES]
    benchmark(baldur_cost, 1024)
    rows = [
        [
            f"{b.n_nodes:,}",
            b.interposers,
            b.fibers,
            b.faus,
            b.rfecs,
            b.transceivers,
            b.total,
            100 * b.interposer_fraction,
        ]
        for b in breakdowns
    ]
    emit(
        "Fig. 10 -- Baldur cost per node (USD); paper: 523 @1K, fat-tree "
        f"reference {C.FATTREE_COST_PER_NODE_USD:.0f}, OCS "
        f"{C.OCS_COST_PER_NODE_USD:.0f}",
        format_table(
            ["scale", "interposer", "fiber", "fau", "rfec", "xcvr",
             "total", "interposer_%"],
            rows,
        ),
    )
    assert abs(breakdowns[0].total - C.BALDUR_COST_PER_NODE_1K_USD) < 30
    assert all(
        b.total < C.FATTREE_COST_PER_NODE_USD for b in breakdowns
    )
