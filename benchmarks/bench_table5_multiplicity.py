"""Table V: path multiplicity vs. gates / switch latency / drop rate.

Paper reference (1,024 nodes, transpose, load 0.7):
  m=1: 64 gates, 0.14 ns, 65.3%    m=2: 300, 0.49 ns, 21.5%
  m=3: 642, 0.94 ns, 3.2%          m=4: 1,112, 1.5 ns, 0.3%
  m=5: 1,710, 2.25 ns, 0.02%
Gate counts and latencies are reproduced verbatim from the switch model;
drop rates come from the detailed simulator (shape reproduced: each +1 in
multiplicity cuts drops by ~5-7X; absolutes run a few X higher than CODES
at reduced scale -- see EXPERIMENTS.md).
"""

from conftest import emit

from repro.analysis.experiments import table5
from repro.analysis.tables import format_table


def test_table5_multiplicity_sweep(benchmark, bench_nodes, bench_packets):
    rows = benchmark.pedantic(
        table5,
        kwargs=dict(
            n_nodes=bench_nodes,
            multiplicities=(1, 2, 3, 4, 5),
            packets_per_node=bench_packets,
        ),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        ["m", "gates", "latency_ns", "drop_%", "paper_drop_%", "avg_ns"],
        [
            [
                r["multiplicity"],
                r["gates_per_switch"],
                r["switch_latency_ns"],
                r["drop_rate_pct"],
                r["paper_drop_rate_pct"],
                r["avg_latency_ns"],
            ]
            for r in rows
        ],
    )
    emit(
        f"Table V -- multiplicity sweep ({bench_nodes} nodes, transpose, "
        f"load 0.7, {bench_packets} pkts/node)",
        table,
    )
    gates = [r["gates_per_switch"] for r in rows]
    assert gates == [64, 300, 642, 1112, 1710]
    drops = [r["drop_rate_pct"] for r in rows]
    assert drops[0] > drops[2] > drops[4]
