"""Ablation: what Baldur's topology choices buy (Sec. IV design points).

Compares drop rates under the adversarial transpose permutation (one-shot
worst case) across three substrates at the same multiplicity:

* randomized multi-butterfly (Baldur: expansion property [14], [19]);
* structured multi-butterfly (same topology, deterministic wiring);
* omega network (single path per source/destination pair [42]).

The paper's claim: randomization makes Baldur immune to worst-case
permutations; deterministic multi-stage wirings are not.
"""

from conftest import emit

from repro.analysis.tables import format_table
from repro.core import BaldurNetwork
from repro.core.drop_model import _dst_transpose, one_shot_drop_rate
from repro.sim.rand import numpy_stream
from repro.topology import BenesTopology, MultiButterflyTopology, OmegaTopology

N_NODES = 1024
MULTIPLICITY = 2


def _one_shot_on_topology(topology) -> float:
    """One-shot transpose drop rate through the detailed simulator."""
    net = BaldurNetwork(
        N_NODES,
        multiplicity=MULTIPLICITY,
        enable_retransmission=False,
        topology=topology,
    )
    dst = _dst_transpose(N_NODES, numpy_stream(0, "ablation-transpose"))
    for src in range(N_NODES):
        if dst[src] != src:
            net.submit(src, int(dst[src]), time=0.0)
    stats = net.run()
    return stats.drop_rate


def test_ablation_randomized_wiring(benchmark):
    randomized = benchmark.pedantic(
        one_shot_drop_rate,
        args=(N_NODES, MULTIPLICITY, "transpose"),
        kwargs=dict(trials=3),
        rounds=1,
        iterations=1,
    )
    structured = _one_shot_on_topology(
        MultiButterflyTopology(N_NODES, MULTIPLICITY, randomize=False)
    )
    omega = _one_shot_on_topology(
        OmegaTopology(N_NODES, MULTIPLICITY)
    )
    benes = _one_shot_on_topology(
        BenesTopology(N_NODES, MULTIPLICITY, seed=0)
    )
    rows = [
        ["randomized multi-butterfly (Baldur)", 100 * randomized],
        ["structured multi-butterfly", 100 * structured],
        ["omega (single-path)", 100 * omega],
        ["benes (random scatter half)", 100 * benes],
    ]
    emit(
        f"Ablation -- worst-case transpose drop rate, {N_NODES} nodes, "
        f"m={MULTIPLICITY}",
        format_table(["wiring", "drop_%"], rows),
    )
    # Randomization must not lose to the deterministic wirings, the
    # single-path omega must be the worst, and the Benes scatter half must
    # recover most of the randomization benefit (Sec. IV / [43]).
    assert randomized <= structured + 0.05
    assert omega >= randomized
    assert benes <= omega
