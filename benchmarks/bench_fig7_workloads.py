"""Fig. 7: normalized latency for hotspot, ping-pong, and HPC workloads.

Paper reference (1,024 nodes): Baldur achieves the best average/tail
latency for all synthetic patterns (geomean 3.4X-4.1X better average) and
all four HPC workloads (geomean 2.6X-9.1X better average); in FB,
dragonfly/fat-tree are 23.5X/46.1X worse than Baldur.
"""

from conftest import emit, emit_sweep_report

from repro.analysis.experiments import (
    NETWORK_NAMES,
    figure7_ratios,
    figure7_spec,
    reshape_figure7,
)
from repro.analysis.tables import format_table
from repro.netsim.stats import geomean
from repro.runner import run_sweep

WORKLOADS = (
    "hotspot", "ping_pong1", "ping_pong2",
    "AMG", "CrystalRouter", "MultiGrid", "FB",
)


def test_fig7_workloads(benchmark, bench_nodes, bench_packets,
                        bench_jobs, bench_cache_dir):
    spec = figure7_spec(
        n_nodes=bench_nodes,
        packets_per_node=bench_packets,
        ping_pong_rounds=8,
    )
    sweep = benchmark.pedantic(
        run_sweep,
        args=(spec,),
        kwargs=dict(jobs=bench_jobs, cache_dir=bench_cache_dir),
        rounds=1,
        iterations=1,
    )
    emit_sweep_report(sweep)
    results = reshape_figure7(sweep)
    # figure7_ratios omits zero-delivery cells (NaN averages); the table
    # shows them as "-" and the geomean runs over the usable cells only.
    ratio_grid = figure7_ratios(results)
    nan = float("nan")
    rows = []
    ratios = {name: [] for name in NETWORK_NAMES if name != "baldur"}
    for workload in WORKLOADS:
        per_workload = ratio_grid.get(workload, {})
        rows.append([workload] + [
            per_workload.get(name, nan) for name in NETWORK_NAMES
        ])
        for name in ratios:
            if name in per_workload:
                ratios[name].append(per_workload[name])
    rows.append(
        ["geomean"]
        + [
            geomean(ratios[name]) if name != "baldur" else 1.0
            for name in NETWORK_NAMES
        ]
    )
    emit(
        f"Fig. 7 -- average latency normalized to Baldur "
        f"({bench_nodes} nodes; paper geomeans 2.6X-9.1X)",
        format_table(["workload"] + list(NETWORK_NAMES), rows),
    )
    # Baldur beats every electrical network on geomean.
    for name in ("multibutterfly", "dragonfly", "fattree"):
        assert geomean(ratios[name]) > 1.0, name
