"""Sec. IV-G: physical packaging of the Baldur network.

Paper reference: 1 cabinet at 1K nodes; 752 cabinets at 1M nodes under
the 127 um fiber-pitch constraint (176 if 85 kW/cabinet were the only
constraint); TL gates occupy <10% of interposer area.
"""

from conftest import emit

from repro.analysis.tables import format_table
from repro.cost.packaging import plan_packaging


def test_sec4g_packaging_plans(benchmark):
    plan_1k = benchmark(plan_packaging, 1024)
    plan_1m = plan_packaging(2**20)
    rows = [
        [
            "1K",
            plan_1k.multiplicity,
            plan_1k.total_interposers,
            plan_1k.cabinets,
            plan_1k.cabinets_power_limited,
            100 * plan_1k.tl_area_fraction_of_interposer,
        ],
        [
            "1M",
            plan_1m.multiplicity,
            plan_1m.total_interposers,
            plan_1m.cabinets,
            plan_1m.cabinets_power_limited,
            100 * plan_1m.tl_area_fraction_of_interposer,
        ],
    ]
    emit(
        "Sec. IV-G -- packaging (paper: 1 cabinet @1K, 752 @1M, "
        "176 power-only, TL area <10%)",
        format_table(
            ["scale", "m", "interposers", "cabinets", "power-only",
             "tl_area_%"],
            rows,
        ),
    )
    assert plan_1k.cabinets == 1
    assert abs(plan_1m.cabinets - 752) <= 10
    assert plan_1m.cabinets_power_limited < plan_1m.cabinets
    assert plan_1k.tl_area_fraction_of_interposer < 0.10
