"""Sec. IV-B: length-based encoding bandwidth overhead.

Paper reference: 0.34% overhead for 8 routing bits + 512 B payload vs.
8b/10b.  Our accounting brackets that figure (0.27% without the 6T end
gap, 0.39% with it).
"""

from conftest import emit

from repro.analysis.tables import format_table
from repro.tl.encoding import (
    decode_packet,
    encode_packet,
    length_encoding_overhead,
)


def test_sec4b_encoding_overhead(benchmark):
    overhead = benchmark(length_encoding_overhead, 8, 512)
    rows = [
        ["8 bits + 512 B, with end gap",
         100 * length_encoding_overhead(8, 512, include_end_gap=True)],
        ["8 bits + 512 B, no end gap",
         100 * length_encoding_overhead(8, 512, include_end_gap=False)],
        ["paper (Sec. IV-B)", 0.34],
        ["20 bits + 512 B (1M-node header)",
         100 * length_encoding_overhead(20, 512)],
    ]
    emit(
        "Sec. IV-B -- length-encoding bandwidth overhead (%)",
        format_table(["configuration", "overhead_%"], rows),
    )
    assert 0.002 < overhead < 0.005


def test_sec4b_codec_roundtrip_throughput(benchmark):
    payload = bytes(range(256))

    def roundtrip():
        wf = encode_packet([0, 1, 1, 0, 1, 0, 0, 1], payload, 40.0)
        return decode_packet(wf, 8, 40.0)

    bits, decoded = benchmark(roundtrip)
    assert decoded == payload
