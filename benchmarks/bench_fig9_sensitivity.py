"""Fig. 9: sensitivity of the 1M-scale power comparison to switch power.

Paper reference (pessimistic case: electrical x0.5, optical x2): Baldur
still consumes 5.1X, 8.2X, and 14.7X less power than dragonfly, fat-tree,
and eMB respectively.
"""

from conftest import emit, emit_sweep_report

from repro.analysis.experiments import figure9_spec
from repro.analysis.tables import format_table
from repro.power.sensitivity import SENSITIVITY_CASES
from repro.runner import run_sweep

PAPER_PESSIMISTIC = {"dragonfly": 5.1, "fattree": 8.2, "multibutterfly": 14.7}


def test_fig9_sensitivity(benchmark, bench_jobs, bench_cache_dir):
    sweep = benchmark.pedantic(
        run_sweep,
        args=(figure9_spec(),),
        kwargs=dict(jobs=bench_jobs, cache_dir=bench_cache_dir),
        rounds=1,
        iterations=1,
    )
    emit_sweep_report(sweep)
    results = sweep.index("case")
    networks = ("dragonfly", "fattree", "multibutterfly")
    rows = [
        [case] + [results[case][n] for n in networks]
        for case in SENSITIVITY_CASES
    ]
    rows.append(
        ["paper pessimistic"] + [PAPER_PESSIMISTIC[n] for n in networks]
    )
    emit(
        "Fig. 9 -- Baldur power advantage under switch-power scaling "
        "(1M-1.4M scale)",
        format_table(["case"] + list(networks), rows),
    )
    for network in networks:
        assert results["pessimistic"][network] > 3.0
