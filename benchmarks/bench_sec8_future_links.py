"""Sec. VIII future work: in-flight routing for >100G links.

The paper projects that TL networks will benefit disproportionately from
faster links: Baldur's switch latency is 1.5 ns, so as serialization time
shrinks (25G -> 100G -> 400G), its end-to-end latency approaches the link
propagation floor, while electrical networks stay pinned by their 90 ns
per-hop header processing.  This bench quantifies that projection using
the simulator with a parameterized link rate.
"""

from conftest import emit

from repro.analysis.tables import format_table
from repro.core import BaldurNetwork

RATES_GBPS = (25.0, 100.0, 400.0)
ELECTRICAL_HOP_NS = 90.0


def unloaded_latency(rate_gbps: float) -> float:
    net = BaldurNetwork(
        64, multiplicity=4, seed=0, link_rate_gbps=rate_gbps
    )
    net.submit(0, 33, time=0.0)
    return net.run().average_latency


def test_sec8_link_rate_projection(benchmark):
    baldur = {rate: unloaded_latency(rate) for rate in RATES_GBPS}
    benchmark.pedantic(
        unloaded_latency, args=(100.0,), rounds=1, iterations=1
    )
    # Electrical floor at 64 nodes: 6 hops of 90 ns header processing plus
    # the same links and one serialization.
    rows = []
    for rate in RATES_GBPS:
        tx = 512 * 8 * 1.25 / rate
        electrical = 6 * ELECTRICAL_HOP_NS + 2 * 100 + 10 * 5 + tx
        rows.append([f"{rate:.0f}G", baldur[rate], electrical,
                     electrical / baldur[rate]])
    emit(
        "Sec. VIII -- unloaded latency vs link rate (64 nodes): Baldur "
        "approaches the propagation floor; electrical stays header-bound",
        format_table(
            ["rate", "baldur_ns", "electrical_ns", "advantage"], rows
        ),
    )
    # Faster links shrink Baldur's latency toward the ~209 ns floor
    # (200 ns links + 9 ns switching) and grow its relative advantage.
    assert baldur[400.0] < baldur[25.0]
    assert rows[-1][3] > rows[0][3]
