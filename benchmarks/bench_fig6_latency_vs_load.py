"""Fig. 6: average and tail packet latency vs. input load.

Paper reference (1,024 nodes, 10,000 pkts/node): Baldur has the lowest
average latency for loads <= 0.7 -- 1.9-6.3X vs fat-tree, 1000-3000X vs
dragonfly (saturated), 2.2-4.3X vs eMB at load 0.7 -- and runs within
1.7-3.4X of the ideal network.  Both multi-butterfly networks saturate at
higher loads than dragonfly/fat-tree.

Benches run at a reduced scale (shape-preserving); set REPRO_BENCH_NODES /
REPRO_BENCH_PACKETS for fuller runs.
"""

from conftest import emit, emit_sweep_report

from repro.analysis.experiments import figure6_spec, reshape_figure6
from repro.analysis.tables import format_latency_grid
from repro.runner import run_sweep

PATTERNS = (
    "random_permutation",
    "transpose",
    "bisection",
    "group_permutation",
)
LOADS = (0.3, 0.7, 0.9)


def test_fig6_latency_vs_load(benchmark, bench_nodes, bench_packets,
                              bench_jobs, bench_cache_dir):
    spec = figure6_spec(
        n_nodes=bench_nodes,
        loads=LOADS,
        patterns=PATTERNS,
        packets_per_node=bench_packets,
    )
    sweep = benchmark.pedantic(
        run_sweep,
        args=(spec,),
        kwargs=dict(jobs=bench_jobs, cache_dir=bench_cache_dir),
        rounds=1,
        iterations=1,
    )
    emit_sweep_report(sweep)
    results = reshape_figure6(sweep)
    blocks = []
    for pattern in PATTERNS:
        blocks.append(
            format_latency_grid(
                results[pattern],
                metric="average_latency",
                title=f"[{pattern}] average latency (ns)",
            )
        )
        blocks.append(
            format_latency_grid(
                results[pattern],
                metric="tail_latency",
                title=f"[{pattern}] p99 latency (ns)",
            )
        )
    emit(
        f"Fig. 6 -- latency vs load ({bench_nodes} nodes, "
        f"{bench_packets} pkts/node)",
        "\n\n".join(blocks),
    )

    # Shape assertions at the paper's headline load (0.7).
    for pattern in PATTERNS:
        at_07 = {
            name: stats[0.7].average_latency
            for name, stats in results[pattern].items()
        }
        assert at_07["baldur"] < at_07["multibutterfly"], pattern
        assert at_07["baldur"] < at_07["fattree"], pattern
        assert at_07["baldur"] < at_07["dragonfly"], pattern
        assert at_07["ideal"] < at_07["baldur"], pattern
