"""Fig. 6: average and tail packet latency vs. input load.

Paper reference (1,024 nodes, 10,000 pkts/node): Baldur has the lowest
average latency for loads <= 0.7 -- 1.9-6.3X vs fat-tree, 1000-3000X vs
dragonfly (saturated), 2.2-4.3X vs eMB at load 0.7 -- and runs within
1.7-3.4X of the ideal network.  Both multi-butterfly networks saturate at
higher loads than dragonfly/fat-tree.

Benches run at a reduced scale (shape-preserving); set REPRO_BENCH_NODES /
REPRO_BENCH_PACKETS for fuller runs.
"""

from conftest import emit

from repro.analysis.experiments import figure6
from repro.analysis.tables import format_latency_grid

PATTERNS = (
    "random_permutation",
    "transpose",
    "bisection",
    "group_permutation",
)
LOADS = (0.3, 0.7, 0.9)


def test_fig6_latency_vs_load(benchmark, bench_nodes, bench_packets):
    results = benchmark.pedantic(
        figure6,
        kwargs=dict(
            n_nodes=bench_nodes,
            loads=LOADS,
            patterns=PATTERNS,
            packets_per_node=bench_packets,
        ),
        rounds=1,
        iterations=1,
    )
    blocks = []
    for pattern in PATTERNS:
        blocks.append(
            format_latency_grid(
                results[pattern],
                metric="average_latency",
                title=f"[{pattern}] average latency (ns)",
            )
        )
        blocks.append(
            format_latency_grid(
                results[pattern],
                metric="tail_latency",
                title=f"[{pattern}] p99 latency (ns)",
            )
        )
    emit(
        f"Fig. 6 -- latency vs load ({bench_nodes} nodes, "
        f"{bench_packets} pkts/node)",
        "\n\n".join(blocks),
    )

    # Shape assertions at the paper's headline load (0.7).
    for pattern in PATTERNS:
        at_07 = {
            name: stats[0.7].average_latency
            for name, stats in results[pattern].items()
        }
        assert at_07["baldur"] < at_07["multibutterfly"], pattern
        assert at_07["baldur"] < at_07["fattree"], pattern
        assert at_07["baldur"] < at_07["dragonfly"], pattern
        assert at_07["ideal"] < at_07["baldur"], pattern
