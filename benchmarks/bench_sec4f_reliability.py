"""Sec. IV-F: timing-margin reliability analysis.

Paper reference: the switch tolerates 0.42T of routing-bit length change
under 10% gate and 1 ps waveguide variation; Gaussian jitter of variance
1.53 then yields an error probability of ~1e-9.
"""

from conftest import emit

from repro.analysis.tables import format_table
from repro.tl.reliability import (
    error_probability,
    monte_carlo_error_rate,
    worst_case_margin_periods,
)


def test_sec4f_margin_and_error_probability(benchmark):
    margin = worst_case_margin_periods(bit_period_ps=40.0)
    prob = benchmark(error_probability, 0.42, 40.0)
    rows = [
        ["worst-case margin (T)", 0.42, margin],
        ["error probability", 1e-9, prob],
    ]
    emit(
        "Sec. IV-F -- reliability margins (paper vs measured)",
        format_table(["metric", "paper", "measured"], rows),
    )
    assert abs(margin - 0.42) < 0.02
    assert 1e-10 < prob < 1e-8


def test_sec4f_monte_carlo_validates_analytic(benchmark):
    # Direct MC cannot reach 1e-9, so validate the analytic curve at an
    # inflated jitter level where both methods have statistics.
    margin, t, var = 0.3, 40.0, 40.0
    mc = benchmark.pedantic(
        monte_carlo_error_rate,
        args=(margin, t, var),
        kwargs=dict(trials=200_000, seed=11),
        rounds=1,
        iterations=1,
    )
    analytic = error_probability(margin, t, var)
    emit(
        "Sec. IV-F -- Monte-Carlo cross-check (inflated jitter)",
        f"analytic={analytic:.4f}  monte-carlo={mc:.4f}",
    )
    assert abs(mc - analytic) / analytic < 0.15
