"""Resilience under switch failures: the five networks with faults injected.

No direct paper figure -- this extends the Sec. IV-F fault discussion to a
quantitative comparison: each network runs the random-permutation pattern
while k of its switches are failed (deterministically sampled, permanent
fail-stop), and a chaos-schedule variant exercises transient MTBF/MTTR
windows.  The packet-conservation invariant is audited on every run, and
the degraded-mode bench demonstrates the paper's claim that masking a
diagnosed faulty switch restores Baldur's delivery via the remaining
multiplicity paths.
"""

from conftest import emit

from repro.analysis.resilience import (
    degraded_mode_comparison,
    resilience_sweep,
)
from repro.analysis.tables import format_table
from repro.faults import ChaosSchedule


def test_resilience_failure_sweep(benchmark, bench_nodes, bench_packets):
    nodes = min(bench_nodes, 64)
    packets = max(2, bench_packets // 4)
    rows = benchmark.pedantic(
        resilience_sweep,
        kwargs=dict(
            n_nodes=nodes,
            failure_counts=(0, 1, 2, 4),
            packets_per_node=packets,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        f"Resilience sweep -- {nodes} nodes, permanent fail-stop",
        format_table(
            ["network", "k", "drop_%", "given_up", "balance"],
            [
                [r["network"], r["k_failed"], 100 * r["drop_rate"],
                 r["given_up"], r["balance"]]
                for r in rows
            ],
        ),
    )
    assert all(r["balance"] == 0 for r in rows)


def test_resilience_chaos_schedule(bench_nodes, bench_packets):
    nodes = min(bench_nodes, 64)
    chaos = ChaosSchedule(
        mtbf_ns=500_000.0,
        mttr_ns=100_000.0,
        horizon_ns=50_000_000.0,
        seed=0,
    )
    rows = resilience_sweep(
        n_nodes=nodes,
        failure_counts=(2,),
        packets_per_node=max(2, bench_packets // 4),
        chaos=chaos,
    )
    emit(
        f"Chaos schedule -- availability {chaos.availability:.3f}",
        format_table(
            ["network", "fault_drops", "drop_%", "balance"],
            [
                [r["network"], r["fault_drops"], 100 * r["drop_rate"],
                 r["balance"]]
                for r in rows
            ],
        ),
    )
    assert all(r["balance"] == 0 for r in rows)


def test_degraded_mode_masking(benchmark, bench_nodes, bench_packets):
    nodes = min(bench_nodes, 64)
    cmp = benchmark.pedantic(
        degraded_mode_comparison,
        kwargs=dict(n_nodes=nodes, packets_per_node=bench_packets),
        rounds=1,
        iterations=1,
    )
    fault = cmp["fault"]
    emit(
        f"Degraded mode -- fault at stage {fault['stage']}, "
        f"switch {fault['switch']} ({nodes} nodes)",
        format_table(
            ["mode", "drop_%", "retransmissions", "avg_ns"],
            [
                [mode, 100 * row["drop_rate"], row["retransmissions"],
                 row["avg_latency_ns"]]
                for mode, row in (("unmasked", cmp["unmasked"]),
                                  ("masked", cmp["masked"]))
            ],
        ),
    )
    assert cmp["masked"]["drop_rate"] < cmp["unmasked"]["drop_rate"]
