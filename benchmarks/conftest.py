"""Shared configuration for the benchmark harness.

The paper's detailed simulations use 1,024 nodes x 10,000 packets/node;
pure-Python packet simulation at that volume takes hours, so the benches
default to a reduced scale that preserves the latency/drop-rate *shape*.
Override with environment variables for fuller runs:

* ``REPRO_BENCH_NODES``   -- network size for packet-level benches
  (default 128; the paper uses 1024);
* ``REPRO_BENCH_PACKETS`` -- packets per node (default 20; paper 10,000);
* ``REPRO_BENCH_JOBS``    -- worker processes for sweep-backed benches
  (default: ``$REPRO_JOBS`` or 1; results are identical at any value);
* ``REPRO_BENCH_CACHE``   -- result-cache directory for sweep-backed
  benches (default: cache disabled);
* ``REPRO_BENCH_FULL=1``  -- also run the >1M-node drop-model case.
"""

import os

import pytest


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@pytest.fixture(scope="session")
def bench_nodes() -> int:
    """Node count for packet-level benches."""
    return _env_int("REPRO_BENCH_NODES", 128)


@pytest.fixture(scope="session")
def bench_packets() -> int:
    """Packets per node for packet-level benches."""
    return _env_int("REPRO_BENCH_PACKETS", 20)


@pytest.fixture(scope="session")
def bench_jobs() -> int:
    """Worker-process count for sweep-backed benches."""
    return _env_int(
        "REPRO_BENCH_JOBS", _env_int("REPRO_JOBS", 1)
    )


@pytest.fixture(scope="session")
def bench_cache_dir():
    """Result-cache directory for sweep-backed benches (None = off)."""
    return os.environ.get("REPRO_BENCH_CACHE") or None


@pytest.fixture(scope="session")
def bench_full() -> bool:
    """Whether to run the full-scale (1M-node) cases."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def emit_sweep_report(sweep) -> None:
    """Print a sweep's execution report (observability for benches)."""
    print(f"\n# sweep: {sweep.report.describe()}")


def emit(title: str, body: str) -> None:
    """Print a paper-style results block (captured by pytest -s)."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
